// Post-mortem violation bundles (the flight recorder's crash dump).
//
// When the CRL-H monitor records a violation, the surrounding harness
// (atomfsd --monitor, tests, exploration drivers) can harvest a
// CrlhMonitor::PostMortem plus a TraceRing snapshot and turn them into a
// *bundle*: a self-contained, line-oriented text document holding
//
//   * the first violation's message and ghost time,
//   * the Helplist and every in-flight Descriptor at harvest time,
//   * the completed op history in abstract (linearization) order, each op
//     with its recorded concrete result — the minimal history sufficient to
//     replay the claimed linearization through the SpecFs oracle, and
//   * the causal slice of ghost events for the involved threads.
//
// `atomfs_verify --bundle FILE` parses a bundle and replays its history:
// running the ops in recorded abstract order against a fresh SpecFs must
// reproduce each recorded concrete result (under ResultsEquivalent); a
// divergence reproduces the refinement verdict offline, away from the
// concurrent schedule that produced it.

#ifndef ATOMFS_SRC_CRLH_BUNDLE_H_
#define ATOMFS_SRC_CRLH_BUNDLE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/crlh/monitor.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace atomfs {

// One completed operation in the bundle's history, in abstract order.
struct BundleHistoryEntry {
  Tid tid = 0;
  bool helped = false;
  Tid helper = 0;
  uint64_t abs_seq = 0;
  OpCall call;
  OpResult concrete;
};

// A snapshot of one in-flight Descriptor (formatting only; replay does not
// need it, humans debugging the schedule do).
struct BundleDescriptor {
  Tid tid = 0;
  AopState state = AopState::kPending;
  Tid helper = 0;
  bool lp_passed = false;
  std::string lock_paths;  // formatted LockPath(s)
  OpCall call;
};

struct PostMortemBundle {
  std::string message;
  uint64_t seq = 0;
  std::vector<Tid> helplist;
  std::vector<BundleDescriptor> descriptors;
  std::vector<BundleHistoryEntry> history;  // sorted by abs_seq
  std::vector<TraceEvent> ghost;            // causal slice, oldest first
};

// Assembles a bundle from a harvested post-mortem and a ring snapshot. The
// ghost slice keeps events of the involved threads (in-flight descriptors,
// Helplist members, helpers, and helped history entries) plus the global
// events (roll-backs, violations); pass an empty vector when no ring was
// attached.
PostMortemBundle BuildPostMortemBundle(const CrlhMonitor::PostMortem& pm,
                                       const std::vector<TraceEvent>& ring_events);

// The versioned text form ("# atomfs-bundle v1"). Round-trips through
// ParseBundle.
std::string FormatBundle(const PostMortemBundle& bundle);

// Parses a bundle document; kInval on malformed input.
Result<PostMortemBundle> ParseBundle(std::istream& in);

struct BundleReplay {
  // True when the replay diverged — the bundle reproduces the refinement
  // violation offline.
  bool reproduced = false;
  size_t ops_replayed = 0;
  size_t divergence_index = 0;  // into PostMortemBundle::history, when reproduced
  std::string verdict;          // human-readable outcome
};

// Replays the bundle's history in recorded abstract order against a fresh
// SpecFs, comparing each recorded concrete result via ResultsEquivalent.
BundleReplay ReplayBundle(const PostMortemBundle& bundle);

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_BUNDLE_H_
