// OpThread: launch an operation on its own thread and learn its Tid before
// the operation starts, so GateObserver gates can be armed for it. Used by
// scenario tests and the linearizability demos.

#ifndef ATOMFS_SRC_CRLH_OP_THREAD_H_
#define ATOMFS_SRC_CRLH_OP_THREAD_H_

#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "src/util/tid.h"

namespace atomfs {

class OpThread {
 public:
  // The body starts executing only after Go() is called.
  explicit OpThread(std::function<void()> body) {
    std::promise<Tid> tid_promise;
    auto tid_future = tid_promise.get_future();
    go_future_ = go_.get_future();
    thread_ = std::thread([this, body = std::move(body), &tid_promise] {
      tid_promise.set_value(CurrentTid());
      go_future_.wait();
      body();
    });
    tid_ = tid_future.get();
  }

  ~OpThread() { Join(); }

  Tid tid() const { return tid_; }

  void Go() { go_.set_value(); }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::thread thread_;
  Tid tid_ = 0;
  std::promise<void> go_;
  std::shared_future<void> go_future_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_OP_THREAD_H_
