// GateObserver: deterministic schedule control for scenario tests.
//
// Reproducing the paper's figures (1, 4(a-c), 8, 9) requires forcing
// specific interleavings: "mkdir has traversed through /a and halts, then
// rename runs to completion, then mkdir resumes". A GateObserver is placed
// after the CrlhMonitor in a TeeObserver chain; the test arms one-shot gates
// ("park thread T when it acquires inode I") and opens them when the rest of
// the schedule has played out. Parked threads keep holding their inode locks
// — exactly the states the paper's interleavings are built from.
//
// Only for use with RealExecutor threads (parking a SimExecutor thread
// inside a callback would stall the cooperative scheduler).

#ifndef ATOMFS_SRC_CRLH_GATE_H_
#define ATOMFS_SRC_CRLH_GATE_H_

#include <condition_variable>
#include <map>
#include <mutex>

#include "src/core/observer.h"

namespace atomfs {

class GateObserver : public FsObserver {
 public:
  enum class Point : uint8_t {
    kLockAcquired,
    kLockReleased,
    kLp,
    kOpBegin,
  };

  // Arms a one-shot gate: the next matching event parks the calling thread
  // until Open(tid). For kLp / kOpBegin, `ino` is ignored.
  void Arm(Tid tid, Point point, Inum ino = kInvalidInum);

  // Blocks the caller until `tid` is parked at its gate.
  void WaitParked(Tid tid);

  // Releases a parked (or future) gate for `tid`.
  void Open(Tid tid);

  // True if `tid` is currently parked.
  bool IsParked(Tid tid) const;

  // FsObserver.
  void OnOpBegin(Tid tid, const OpCall& call) override;
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override;
  void OnLockReleased(Tid tid, Inum ino) override;
  void OnLp(Tid tid, Inum created_ino) override;

 private:
  struct Gate {
    Point point = Point::kLp;
    Inum ino = kInvalidInum;
    bool armed = false;
    bool parked = false;
    bool open = false;
  };

  void MaybePark(Tid tid, Point point, Inum ino);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Tid, Gate> gates_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_GATE_H_
