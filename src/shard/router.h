// ShardRouter: the prefix → shard map of the sharded namespace.
//
// Routing is by *first path component*: every root-level name (and the whole
// subtree under it) lives on exactly one shard. A name's home shard is its
// stable hash unless a sticky table entry says otherwise; entries are pinned
// lazily when a root-level name is created, and each entry carries an epoch
// that cross-shard migrations bump at publish and at commit/abort. An op
// that routed before a publish and lands after it observes the epoch change
// — the stale-route signal (Errc::kShardMoved) that the router's retry loop
// absorbs (docs/SHARDING.md).
//
// The router itself is unsynchronized; ShardedFs guards it with its
// namespace mutex.

#ifndef ATOMFS_SRC_SHARD_ROUTER_H_
#define ATOMFS_SRC_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>

namespace atomfs {

class ShardRouter {
 public:
  explicit ShardRouter(uint32_t shard_count);

  uint32_t shard_count() const { return shard_count_; }

  // Home shard of root-level name: the sticky entry if pinned, else the
  // stable hash. Deterministic across processes (FNV-1a).
  uint32_t Route(const std::string& name) const;

  // Pins `name`'s current route into the table (idempotent) and returns it.
  // Called when a root-level name is created, so later epoch bumps have an
  // entry to land on.
  uint32_t Assign(const std::string& name);

  // Route epoch of `name`; 0 until the first bump. An op that saw epoch E at
  // routing time and E' != E at completion raced a migration's publish.
  uint64_t Epoch(const std::string& name) const;

  // Advances `name`'s epoch (pinning the entry if needed). Migrations bump
  // the epochs of every root-level name in their footprint at publish and
  // again at commit/abort.
  void BumpEpoch(const std::string& name);

  size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    uint32_t shard = 0;
    uint64_t epoch = 0;
  };

  uint32_t HashRoute(const std::string& name) const;

  uint32_t shard_count_;
  std::map<std::string, Entry> table_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SHARD_ROUTER_H_
