#include "src/shard/router.h"

#include "src/util/check.h"

namespace atomfs {

ShardRouter::ShardRouter(uint32_t shard_count) : shard_count_(shard_count) {
  ATOMFS_CHECK(shard_count >= 1);
}

uint32_t ShardRouter::HashRoute(const std::string& name) const {
  // FNV-1a, 64-bit: stable across runs so tests and remote clients can
  // predict placement.
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<uint32_t>(h % shard_count_);
}

uint32_t ShardRouter::Route(const std::string& name) const {
  auto it = table_.find(name);
  if (it != table_.end()) {
    return it->second.shard;
  }
  return HashRoute(name);
}

uint32_t ShardRouter::Assign(const std::string& name) {
  auto [it, inserted] = table_.try_emplace(name);
  if (inserted) {
    it->second.shard = HashRoute(name);
  }
  return it->second.shard;
}

uint64_t ShardRouter::Epoch(const std::string& name) const {
  auto it = table_.find(name);
  return it == table_.end() ? 0 : it->second.epoch;
}

void ShardRouter::BumpEpoch(const std::string& name) {
  auto [it, inserted] = table_.try_emplace(name);
  if (inserted) {
    it->second.shard = HashRoute(name);
  }
  ++it->second.epoch;
}

}  // namespace atomfs
