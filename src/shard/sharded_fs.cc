#include "src/shard/sharded_fs.h"

#include <algorithm>
#include <sstream>

#include "src/afs/op.h"
#include "src/util/check.h"

namespace atomfs {

namespace {

bool IsStagingName(const std::string& name) {
  return name.rfind(kShardStagePrefix, 0) == 0;
}

Path ChildPath(const Path& parent, const std::string& name) {
  Path p = parent;
  p.parts.push_back(name);
  return p;
}

// Deep-copies the subtree at `src` of `from` to `dst` of `to` (dst must not
// exist; its parent must). Used by the migration's copy phase, always into a
// fresh staging entry.
Status CopyTree(FileSystem& from, const Path& src, FileSystem& to, const Path& dst) {
  auto st = from.Stat(src);
  if (!st.ok()) {
    return st.status();
  }
  if (st->type == FileType::kFile) {
    Status mk = to.Mknod(dst);
    if (!mk.ok()) {
      return mk;
    }
    std::vector<std::byte> buf(st->size);
    if (!buf.empty()) {
      auto n = from.Read(src, 0, std::span<std::byte>(buf));
      if (!n.ok()) {
        return n.status();
      }
      buf.resize(*n);
      auto w = to.Write(dst, 0, std::span<const std::byte>(buf));
      if (!w.ok()) {
        return w.status();
      }
    }
    return Status::Ok();
  }
  Status mk = to.Mkdir(dst);
  if (!mk.ok()) {
    return mk;
  }
  auto entries = from.ReadDir(src);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const DirEntry& e : *entries) {
    Status st2 = CopyTree(from, ChildPath(src, e.name), to, ChildPath(dst, e.name));
    if (!st2.ok()) {
      return st2;
    }
  }
  return Status::Ok();
}

// Grafts `from`'s subtree at `src_ino` into `to`, returning the new inum.
Inum Graft(const SpecFs& from, Inum src_ino, SpecFs& to) {
  const SpecInode* n = from.Find(src_ino);
  ATOMFS_CHECK(n != nullptr);
  const Inum ni = to.AllocInum();
  SpecInode copy;
  copy.type = n->type;
  copy.data = n->data;
  to.imap_mutable()[ni] = std::move(copy);
  for (const auto& [name, child] : n->links) {
    const Inum ci = Graft(from, child, to);
    to.imap_mutable()[ni].links[name] = ci;
  }
  return ni;
}

OpResult AsOpResult(const FsOpResult& r) {
  OpResult out;
  static_cast<FsOpResult&>(out) = r;
  return out;
}

}  // namespace

ShardedFs::ShardedFs() : ShardedFs(Options{}) {}

ShardedFs::ShardedFs(Options options) : opts_(std::move(options)), router_(opts_.shards) {
  ATOMFS_CHECK(opts_.shards >= 1);
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    FsObserver* observer = nullptr;
    if (opts_.monitored) {
      CrlhMonitor::Options mo = opts_.monitor;
      mo.shard_id = i;
      monitors_.push_back(std::make_unique<CrlhMonitor>(mo));
      observer = monitors_.back().get();
    }
    if (opts_.extra_observer != nullptr) {
      if (observer != nullptr) {
        tees_.push_back(std::make_unique<TeeObserver>(observer, opts_.extra_observer));
        observer = tees_.back().get();
      } else {
        observer = opts_.extra_observer;
      }
    }
    AtomFs::Options fo = opts_.fs;
    fo.observer = observer;
    shards_.push_back(std::make_unique<AtomFs>(std::move(fo)));
  }
}

ShardedFs::~ShardedFs() = default;

uint32_t ShardedFs::Capabilities() const {
  return kFsCapSharding | (opts_.fs.enable_rcu_walk ? kFsCapRcuWalk : 0);
}

// --- FileSystem virtuals: wrap into FsOp, route through Dispatch ------------

Status ShardedFs::Mkdir(const Path& path) {
  FsOp op;
  op.kind = OpKind::kMkdir;
  op.a = path;
  return Dispatch(op).status;
}

Status ShardedFs::Mknod(const Path& path) {
  FsOp op;
  op.kind = OpKind::kMknod;
  op.a = path;
  return Dispatch(op).status;
}

Status ShardedFs::Rmdir(const Path& path) {
  FsOp op;
  op.kind = OpKind::kRmdir;
  op.a = path;
  return Dispatch(op).status;
}

Status ShardedFs::Unlink(const Path& path) {
  FsOp op;
  op.kind = OpKind::kUnlink;
  op.a = path;
  return Dispatch(op).status;
}

Status ShardedFs::Rename(const Path& src, const Path& dst) {
  FsOp op;
  op.kind = OpKind::kRename;
  op.a = src;
  op.b = dst;
  return Dispatch(op).status;
}

Status ShardedFs::Exchange(const Path& a, const Path& b) {
  FsOp op;
  op.kind = OpKind::kExchange;
  op.a = a;
  op.b = b;
  return Dispatch(op).status;
}

Result<Attr> ShardedFs::Stat(const Path& path) {
  FsOp op;
  op.kind = OpKind::kStat;
  op.a = path;
  FsOpResult r = Dispatch(op);
  if (!r.status.ok()) {
    return r.status;
  }
  return r.attr;
}

Result<std::vector<DirEntry>> ShardedFs::ReadDir(const Path& path) {
  FsOp op;
  op.kind = OpKind::kReadDir;
  op.a = path;
  FsOpResult r = Dispatch(op);
  if (!r.status.ok()) {
    return r.status;
  }
  return std::move(r.entries);
}

Result<size_t> ShardedFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  FsOp op;
  op.kind = OpKind::kRead;
  op.a = path;
  op.offset = offset;
  op.len = out.size();
  FsOpResult r = Dispatch(op);
  if (!r.status.ok()) {
    return r.status;
  }
  std::copy_n(r.data.begin(), std::min(r.data.size(), out.size()), out.begin());
  return static_cast<size_t>(r.nbytes);
}

Result<size_t> ShardedFs::Write(const Path& path, uint64_t offset,
                                std::span<const std::byte> data) {
  FsOp op;
  op.kind = OpKind::kWrite;
  op.a = path;
  op.offset = offset;
  op.payload = data;
  FsOpResult r = Dispatch(op);
  if (!r.status.ok()) {
    return r.status;
  }
  return static_cast<size_t>(r.nbytes);
}

Status ShardedFs::Truncate(const Path& path, uint64_t size) {
  FsOp op;
  op.kind = OpKind::kTruncate;
  op.a = path;
  op.offset = size;
  return Dispatch(op).status;
}

// --- dispatch ---------------------------------------------------------------

FsOpResult ShardedFs::RunOnShard(uint32_t s, const FsOp& op) {
  if (opts_.metrics != nullptr) {
    opts_.metrics->GetCounter("shard.ops.s" + std::to_string(s)).Inc();
  }
  return shards_[s]->Dispatch(op);
}

FsOpResult ShardedFs::Dispatch(const FsOp& op) {
  const Tid tid = CurrentTid();
  {
    std::lock_guard<std::mutex> lk(ns_mu_);
    ++ns_seq_;
    if (ns_pool_.count(tid) != 0) {
      ViolationLocked("thread " + std::to_string(tid) +
                      " entered the shard router while an op is in flight");
    }
    Descriptor d;
    d.call = OpCall::FromFsOp(op);
    d.shard = op.a.IsRoot() ? 0 : router_.Route(op.a.parts[0]);
    d.begin_seq = ns_seq_;
    ns_pool_[tid] = std::move(d);
  }

  FsOpResult r;
  if (op.a.IsRoot() && (op.kind == OpKind::kStat || op.kind == OpKind::kReadDir ||
                        op.kind == OpKind::kRmdir)) {
    r = DispatchGlobal(tid, op);
  } else if (op.a.IsRoot()) {
    // Root-target mutations (mkdir "/", write "/", rename of "/", ...) are
    // always errors whose code does not depend on tree content; any shard
    // produces the canonical one.
    r = RunOnShard(0, op);
  } else {
    r = DispatchRooted(tid, op);
  }

  {
    std::lock_guard<std::mutex> lk(ns_mu_);
    RecordLocked(tid, op, r);
    auto it = ns_pool_.find(tid);
    if (it != ns_pool_.end()) {
      auto pos = std::find(ns_helplist_.begin(), ns_helplist_.end(), tid);
      if (pos != ns_helplist_.end()) {
        ns_helplist_.erase(pos);
        if (opts_.obs != nullptr) {
          opts_.obs->OnHelpedRetired(tid, ns_helplist_.size());
        }
      }
      ns_pool_.erase(it);
    }
  }
  return r;
}

FsOpResult ShardedFs::DispatchRooted(Tid tid, const FsOp& op) {
  const std::string& c0 = op.a.parts[0];
  std::vector<std::string> comps{c0};
  const bool two_path =
      (op.kind == OpKind::kRename || op.kind == OpKind::kExchange) && !op.b.IsRoot();
  if (two_path && op.b.parts[0] != c0) {
    comps.push_back(op.b.parts[0]);
  }

  std::unique_lock<std::mutex> lk(ns_mu_);

  const bool cross_shard =
      two_path && comps.size() == 2 && router_.Route(comps[0]) != router_.Route(comps[1]);

  if (opts_.unsafe_stale_route && !cross_shard) {
    // Cross-shard helper ops are exempt: they *are* the migrations whose
    // windows this mode lets other ops race into.
    // VALIDATION ONLY: race straight to the hashed shard, ignoring published
    // migrations. If the footprint's route epoch moved underneath the op,
    // surface Errc::kShardMoved — the stale-route error safe mode absorbs.
    const uint32_t s = router_.Route(c0);
    const uint64_t epoch = router_.Epoch(c0);
    lk.unlock();
    FsOpResult r = RunOnShard(s, op);
    lk.lock();
    if (router_.Epoch(c0) != epoch) {
      r = FsOpResult{};
      r.status = Status(Errc::kShardMoved);
    }
    return r;
  }

  for (;;) {
    ShardMigration* hit = FindMigrationTouchingLocked(comps);
    if (hit == nullptr) {
      break;
    }
    // Routed into a published migration's footprint: help complete it (the
    // blocked-side lock holder finishes the two-shard commit), then retry
    // the route.
    ++stale_retries_;
    if (opts_.metrics != nullptr) {
      opts_.metrics->GetCounter("shard.stale_retries").Inc();
    }
    auto m = active_.at(hit->id);
    ns_pool_[tid].migration_id = m->id;
    DriveMigrationLocked(lk, tid, m);
  }

  if (cross_shard) {
    return RunMigration(lk, tid, op, comps);
  }

  if ((op.kind == OpKind::kMkdir || op.kind == OpKind::kMknod) && op.a.parts.size() == 1) {
    router_.Assign(c0);  // pin the route of a fresh root-level name
  }
  PinLocked(comps);
  const uint32_t s = router_.Route(c0);
  lk.unlock();
  FsOpResult r = RunOnShard(s, op);
  lk.lock();
  UnpinLocked(comps);
  return r;
}

FsOpResult ShardedFs::DispatchGlobal(Tid tid, const FsOp& op) {
  std::unique_lock<std::mutex> lk(ns_mu_);
  // A root-level view spans every shard, so it must not observe any
  // migration window: help every active migration to completion first.
  while (!active_.empty()) {
    auto m = active_.begin()->second;
    ++stale_retries_;
    ns_pool_[tid].migration_id = m->id;
    DriveMigrationLocked(lk, tid, m);
  }
  ++inflight_global_;
  lk.unlock();

  FsOpResult r;
  switch (op.kind) {
    case OpKind::kReadDir: {
      std::map<std::string, DirEntry> merged;
      for (auto& sh : shards_) {
        auto entries = sh->ReadDir(op.a);
        if (!entries.ok()) {
          r.status = entries.status();
          break;
        }
        for (DirEntry& e : *entries) {
          if (!IsStagingName(e.name)) {
            merged[e.name] = std::move(e);
          }
        }
      }
      if (r.status.ok()) {
        for (auto& [name, e] : merged) {
          r.entries.push_back(std::move(e));
        }
      }
      break;
    }
    case OpKind::kStat: {
      uint64_t total = 0;
      for (auto& sh : shards_) {
        auto entries = sh->ReadDir(op.a);
        if (entries.ok()) {
          for (const DirEntry& e : *entries) {
            if (!IsStagingName(e.name)) {
              ++total;
            }
          }
        }
      }
      r.attr.ino = kRootInum;
      r.attr.type = FileType::kDir;
      r.attr.size = total;
      break;
    }
    case OpKind::kRmdir: {
      bool empty = true;
      for (auto& sh : shards_) {
        auto entries = sh->ReadDir(op.a);
        if (entries.ok()) {
          for (const DirEntry& e : *entries) {
            if (!IsStagingName(e.name)) {
              empty = false;
            }
          }
        }
      }
      if (!empty) {
        r.status = Status(Errc::kNotEmpty);
      } else {
        r = RunOnShard(0, op);  // canonical can't-remove-root error
      }
      break;
    }
    default:
      r.status = Status(Errc::kInval);
      break;
  }

  lk.lock();
  --inflight_global_;
  ns_cv_.notify_all();
  return r;
}

// --- cross-shard migration --------------------------------------------------

FsOpResult ShardedFs::RunMigration(std::unique_lock<std::mutex>& lk, Tid tid, const FsOp& op,
                                   const std::vector<std::string>& comps) {
  auto m = std::make_shared<ShardMigration>();
  m->id = next_migration_++;
  m->driver = tid;
  m->call = OpCall::FromFsOp(op);
  m->comps = comps;

  const std::string stage = std::string(kShardStagePrefix) + std::to_string(m->id);
  Move mv;
  mv.src_shard = router_.Route(op.a.parts[0]);
  mv.dst_shard = router_.Route(op.b.parts[0]);
  mv.src = op.a;
  mv.dst = op.b;
  mv.src_stage.parts = {stage};
  mv.dst_stage.parts = {stage};
  m->moves.push_back(mv);
  if (op.kind == OpKind::kExchange) {
    Move back;
    back.src_shard = mv.dst_shard;
    back.dst_shard = mv.src_shard;
    back.src = op.b;
    back.dst = op.a;
    back.src_stage.parts = {stage + "b"};
    back.dst_stage.parts = {stage + "b"};
    m->moves.push_back(back);
  }

  ns_pool_[tid].migration_id = m->id;
  active_[m->id] = m;
  for (const std::string& c : m->comps) {
    router_.BumpEpoch(c);
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->GetCounter("shard.migrations").Inc();
  }

  DriveMigrationLocked(lk, tid, m);

  FsOpResult r;
  r.status = m->result;
  return r;
}

ShardedFs::ShardMigration* ShardedFs::FindMigrationTouchingLocked(
    const std::vector<std::string>& comps) {
  for (auto& [id, m] : active_) {
    for (const std::string& c : comps) {
      if (std::find(m->comps.begin(), m->comps.end(), c) != m->comps.end()) {
        return m.get();
      }
    }
  }
  return nullptr;
}

void ShardedFs::PinLocked(const std::vector<std::string>& comps) {
  for (const std::string& c : comps) {
    ++inflight_[c];
  }
}

void ShardedFs::UnpinLocked(const std::vector<std::string>& comps) {
  for (const std::string& c : comps) {
    auto it = inflight_.find(c);
    ATOMFS_CHECK(it != inflight_.end() && it->second > 0);
    if (--it->second == 0) {
      inflight_.erase(it);
    }
  }
  ns_cv_.notify_all();
}

void ShardedFs::DriveMigrationLocked(std::unique_lock<std::mutex>& lk, Tid tid,
                                     std::shared_ptr<ShardMigration> m) {
  using Phase = ShardMigration::Phase;
  auto claimable = [&]() {
    if (m->claimed) {
      return false;
    }
    if (m->phase == Phase::kPublished) {
      // The detach must wait for ops that pinned the footprint before the
      // publish to drain (and for root-level views to finish) — they
      // linearize before the migration.
      if (inflight_global_ != 0) {
        return false;
      }
      for (const std::string& c : m->comps) {
        auto it = inflight_.find(c);
        if (it != inflight_.end() && it->second > 0) {
          return false;
        }
      }
    }
    return true;
  };

  while (m->phase != Phase::kDone && m->phase != Phase::kAborted) {
    if (!claimable()) {
      ns_cv_.wait(lk);
      continue;
    }
    m->claimed = true;
    const Phase phase = m->phase;
    lk.unlock();
    const Phase next = ExecutePhase(*m, phase);
    lk.lock();
    m->claimed = false;
    m->phase = next;
    if (tid != m->driver) {
      m->helpers.insert(tid);
    }
    if (next == Phase::kDone || next == Phase::kAborted) {
      EmitHelpEventsLocked(*m);
      if (next == Phase::kDone) {
        ++migrations_completed_;
        if (opts_.metrics != nullptr) {
          opts_.metrics->GetCounter("shard.migrations_completed").Inc();
        }
      } else {
        ++migrations_aborted_;
        if (opts_.metrics != nullptr) {
          opts_.metrics->GetCounter("shard.migrations_aborted").Inc();
        }
      }
      for (const std::string& c : m->comps) {
        router_.BumpEpoch(c);
      }
      active_.erase(m->id);
    }
    ns_cv_.notify_all();
  }
}

ShardedFs::ShardMigration::Phase ShardedFs::ExecutePhase(ShardMigration& m,
                                                         ShardMigration::Phase phase) {
  using Phase = ShardMigration::Phase;
  auto undo_detach = [&]() {
    for (size_t i = m.detached; i-- > 0;) {
      const Move& mv = m.moves[i];
      shards_[mv.src_shard]->Rename(mv.src_stage, mv.src);
    }
    m.detached = 0;
  };

  switch (phase) {
    case Phase::kPublished: {  // detach: the migration's linearization point
      for (const Move& mv : m.moves) {
        Status st = shards_[mv.src_shard]->Rename(mv.src, mv.src_stage);
        if (!st.ok()) {
          m.result = st;
          undo_detach();
          return Phase::kAborted;
        }
        ++m.detached;
      }
      if (opts_.test_pause_after_detach) {
        opts_.test_pause_after_detach();
      }
      if (opts_.unsafe_abandon_migration) {
        // VALIDATION ONLY: claim success with the subtree stranded in
        // staging — the half-applied state CheckQuiescent must flag.
        m.result = Status::Ok();
        return Phase::kDone;
      }
      return Phase::kDetached;
    }
    case Phase::kDetached: {  // copy into the destination shard's staging
      for (const Move& mv : m.moves) {
        Status st = CopyTree(*shards_[mv.src_shard], mv.src_stage, *shards_[mv.dst_shard],
                             mv.dst_stage);
        if (!st.ok()) {
          m.result = st;
          for (const Move& mv2 : m.moves) {
            RemoveAll(*shards_[mv2.dst_shard], mv2.dst_stage);
          }
          undo_detach();
          return Phase::kAborted;
        }
      }
      return Phase::kCopied;
    }
    case Phase::kCopied: {  // attach: dst-exists semantics resolve here
      for (size_t i = 0; i < m.moves.size(); ++i) {
        const Move& mv = m.moves[i];
        Status st = shards_[mv.dst_shard]->Rename(mv.dst_stage, mv.dst);
        if (!st.ok()) {
          m.result = st;
          for (size_t j = i; j-- > 0;) {  // un-attach earlier moves
            const Move& mv2 = m.moves[j];
            shards_[mv2.dst_shard]->Rename(mv2.dst, mv2.dst_stage);
          }
          for (const Move& mv2 : m.moves) {
            RemoveAll(*shards_[mv2.dst_shard], mv2.dst_stage);
          }
          undo_detach();
          return Phase::kAborted;
        }
      }
      return Phase::kAttached;
    }
    case Phase::kAttached: {  // cleanup: drop the source staging copies
      for (const Move& mv : m.moves) {
        RemoveAll(*shards_[mv.src_shard], mv.src_stage);
      }
      m.result = Status::Ok();
      return Phase::kDone;
    }
    case Phase::kDone:
    case Phase::kAborted:
      break;
  }
  ATOMFS_CHECK(false);
  return Phase::kAborted;
}

void ShardedFs::EmitHelpEventsLocked(ShardMigration& m) {
  if (ns_pool_.count(m.driver) == 0) {
    return;  // driver already retired (cannot happen in practice)
  }
  std::map<Tid, HelpReason> reasons;
  auto order = ComputeHelpOrder(m.driver, ns_pool_, &reasons);
  if (!order.has_value()) {
    ViolationLocked("cyclic cross-shard linearize-before at migration " + std::to_string(m.id));
    return;
  }
  if (order->empty()) {
    return;
  }
  if (opts_.obs != nullptr) {
    opts_.obs->OnHelpEvent(m.driver, order->size());
  }
  for (Tid t : *order) {
    if (std::find(ns_helplist_.begin(), ns_helplist_.end(), t) != ns_helplist_.end()) {
      continue;
    }
    ns_helplist_.push_back(t);
    ++cross_help_edges_;
    if (opts_.metrics != nullptr) {
      opts_.metrics->GetCounter("shard.cross_help_edges").Inc();
    }
    if (opts_.obs != nullptr) {
      opts_.obs->OnHelpedLinearized(m.driver, t,
                                    reasons.count(t) != 0 ? reasons.at(t)
                                                          : HelpReason::kCrossShard,
                                    ns_helplist_.size(), ns_helplist_.size());
    }
  }
}

// --- history, verdicts, quiescent checks ------------------------------------

void ShardedFs::RecordLocked(Tid tid, const FsOp& op, const FsOpResult& r) {
  if (!opts_.record_history) {
    return;
  }
  CrlhMonitor::CompletedRecord rec;
  rec.tid = tid;
  rec.call = OpCall::FromFsOp(op);
  rec.concrete = AsOpResult(r);
  auto it = ns_pool_.find(tid);
  if (it != ns_pool_.end()) {
    rec.begin_seq = it->second.begin_seq;
    if (it->second.migration_id != 0 &&
        std::find(ns_helplist_.begin(), ns_helplist_.end(), tid) != ns_helplist_.end()) {
      rec.helped = true;
    }
  }
  ++ns_seq_;
  rec.lp_seq = ns_seq_;
  rec.abs_seq = ns_seq_;
  rec.end_seq = ns_seq_;
  ns_history_.push_back(std::move(rec));
}

void ShardedFs::ViolationLocked(const std::string& message) {
  if (ns_violations_.empty()) {
    first_violation_seq_ = ++ns_seq_;
  }
  ns_violations_.push_back(message);
  if (opts_.obs != nullptr) {
    opts_.obs->OnViolation(message, ns_seq_);
  }
}

uint64_t ShardedFs::migrations_completed() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return migrations_completed_;
}

uint64_t ShardedFs::migrations_aborted() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return migrations_aborted_;
}

uint64_t ShardedFs::cross_shard_help_edges() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return cross_help_edges_;
}

uint64_t ShardedFs::stale_route_retries() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return stale_retries_;
}

bool ShardedFs::ok() const { return violations().empty(); }

std::vector<std::string> ShardedFs::violations() const {
  std::vector<std::string> all;
  {
    std::lock_guard<std::mutex> lk(ns_mu_);
    all = ns_violations_;
  }
  for (size_t i = 0; i < monitors_.size(); ++i) {
    for (const std::string& v : monitors_[i]->violations()) {
      all.push_back("shard " + std::to_string(i) + ": " + v);
    }
  }
  return all;
}

std::vector<Tid> ShardedFs::Helplist() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return ns_helplist_;
}

std::vector<CrlhMonitor::CompletedRecord> ShardedFs::Completed() const {
  std::lock_guard<std::mutex> lk(ns_mu_);
  return ns_history_;
}

SpecFs ShardedFs::SnapshotSpec() const {
  SpecFs merged;
  for (const auto& sh : shards_) {
    SpecFs s = sh->SnapshotSpec();
    const SpecInode* root = s.Find(kRootInum);
    ATOMFS_CHECK(root != nullptr);
    for (const auto& [name, child] : root->links) {
      if (IsStagingName(name)) {
        continue;
      }
      const Inum ni = Graft(s, child, merged);
      merged.imap_mutable()[kRootInum].links[name] = ni;
    }
  }
  return merged;
}

bool ShardedFs::CheckQuiescent() {
  bool all_ok = true;

  // 1. No migration may be in flight or half-applied: the staging namespace
  //    must be empty on every shard.
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto entries = shards_[i]->ReadDir(std::string_view("/"));
    if (entries.ok()) {
      for (const DirEntry& e : *entries) {
        if (IsStagingName(e.name)) {
          std::lock_guard<std::mutex> lk(ns_mu_);
          ViolationLocked("abandoned migration staging /" + e.name + " on shard " +
                          std::to_string(i));
          all_ok = false;
        }
      }
    }
  }

  // 2. Every shard's abstract and concrete trees must agree.
  for (size_t i = 0; i < monitors_.size(); ++i) {
    if (!monitors_[i]->CheckQuiescent(shards_[i]->SnapshotSpec())) {
      all_ok = false;
    }
  }

  // 3. Namespace refinement (deterministic harnesses only, see Options).
  if (opts_.check_refinement) {
    std::lock_guard<std::mutex> lk(ns_mu_);
    SpecFs spec;
    for (size_t i = 0; i < ns_history_.size(); ++i) {
      CrlhMonitor::CompletedRecord& rec = ns_history_[i];
      rec.abstract = RunOp(spec, rec.call);
      if (!ResultsEquivalent(rec.call.kind, rec.concrete, rec.abstract)) {
        ViolationLocked("namespace refinement divergence at op " + std::to_string(i) + ": " +
                        rec.call.ToString() + " concrete=" +
                        rec.concrete.ToString(rec.call.kind) + " abstract=" +
                        rec.abstract.ToString(rec.call.kind));
        all_ok = false;
      }
    }
    ns_abstract_ = spec;
  }
  if (opts_.check_refinement) {
    SpecFs merged = SnapshotSpec();
    std::lock_guard<std::mutex> lk(ns_mu_);
    if (!StructurallyEqual(ns_abstract_, merged)) {
      ViolationLocked("namespace quiescent divergence: merged shard state differs from the "
                      "abstract replay");
      all_ok = false;
    }
  }

  return all_ok && ok();
}

std::optional<CrlhMonitor::PostMortem> ShardedFs::PostMortemState() const {
  {
    std::lock_guard<std::mutex> lk(ns_mu_);
    if (!ns_violations_.empty()) {
      CrlhMonitor::PostMortem pm;
      pm.message = ns_violations_.front();
      pm.seq = first_violation_seq_;
      pm.helplist = ns_helplist_;
      pm.pool = ns_pool_;
      pm.history = ns_history_;
      pm.abstract = ns_abstract_;
      return pm;
    }
  }
  for (const auto& mon : monitors_) {
    auto pm = mon->PostMortemState();
    if (pm.has_value()) {
      return pm;
    }
  }
  return std::nullopt;
}

}  // namespace atomfs
