// ShardedFs: a sharded namespace over N independent AtomFs instances.
//
// Every root-level name (and the subtree under it) lives on exactly one
// shard, chosen by the ShardRouter; ops route by first path component and
// run on their home shard with that shard's full lock-coupling / CRL-H
// machinery. The root directory itself is virtual: ReadDir("/") merges the
// shard roots (hiding migration staging entries), Stat("/") sums them.
//
// Cross-shard Rename/Exchange — the two paths' first components route to
// different shards — runs as a *two-shard commit* driven by a published
// operation descriptor (ShardMigration):
//
//   publish   the descriptor enters the migration table under the namespace
//             mutex and bumps the footprint's route epochs; from here every
//             op routed into the footprint sees it
//   detach    the source subtree atomically renames to a hidden root-level
//             staging entry (/.m<id>) on its shard — the migration's
//             linearization point: the subtree disappears from its old name
//   copy      the staged subtree is copied into the destination shard's
//             staging entry
//   attach    one atomic rename puts the copy at the destination path (this
//             is where dst-exists semantics — ENOTEMPTY and friends —
//             resolve; failure rolls the detach back and aborts)
//   cleanup   the source staging entry is deleted; the descriptor retires
//
// The window between detach and attach is unobservable because of *helping*:
// an op routed into a published migration's footprint must complete the
// migration's remaining phases (racing the driver for per-phase claims)
// before it runs. Blocked-side lock holders therefore help exactly as the
// paper's linothers does for in-shard renames; at commit the helping set is
// computed with the extended ComputeHelpOrder (HelpReason::kCrossShard) and
// reported through CrlhObsSink, so the Helplist, ghost trace, and Perfetto
// flow arrows show the cross-shard protocol end-to-end.
//
// Two VALIDATION-ONLY hooks break the protocol so tests can demonstrate
// that the checkers catch it: `unsafe_stale_route` skips the migration gate
// (an op can observe the detach window; if its route epoch moved underneath
// it the op reports Errc::kShardMoved, which safe mode never leaks), and
// `unsafe_abandon_migration` retires the descriptor right after detach,
// leaving the namespace half-applied. Both surface as refinement
// divergences with a replayable post-mortem bundle (src/crlh/bundle.h).

#ifndef ATOMFS_SRC_SHARD_SHARDED_FS_H_
#define ATOMFS_SRC_SHARD_SHARDED_FS_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/atom_fs.h"
#include "src/core/observer.h"
#include "src/crlh/monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/sink.h"
#include "src/shard/router.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Root-level staging entries are named kShardStagePrefix + migration id
// (+ "b" for an exchange's second move); ReadDir("/") and SnapshotSpec()
// hide them, and CheckQuiescent flags any leftover as an abandoned
// migration.
inline constexpr const char* kShardStagePrefix = ".m";

class ShardedFs : public FileSystem {
 public:
  struct Options {
    uint32_t shards = 2;

    // Attach a CrlhMonitor per shard (Options::monitor as the template; its
    // shard_id is overwritten with the shard index). The monitors check each
    // shard's lock-coupling execution exactly as in the unsharded system.
    bool monitored = false;
    CrlhMonitor::Options monitor;

    // Extra FsObserver tee'd into every shard (e.g. a TracingObserver, so
    // the flight recorder sees the constituent shard ops of a migration).
    FsObserver* extra_observer = nullptr;

    // Namespace-level sink for cross-shard help events and violations
    // (HelpReason::kCrossShard); typically the same TracingObserver.
    CrlhObsSink* obs = nullptr;

    MetricsRegistry* metrics = nullptr;  // shard.* counters/gauges when set

    // Base options for every shard's AtomFs (observer is overwritten).
    AtomFs::Options fs;

    // Record the namespace-level history of completed ops (needed for
    // refinement checking and post-mortem bundles).
    bool record_history = true;

    // Replay the namespace history against a fresh SpecFs in CheckQuiescent.
    // Sound only for deterministic (single-threaded or externally
    // serialized) harnesses: the history is recorded in completion order,
    // which concurrent same-shard ops may legally deviate from. Concurrent
    // runs rely on the per-shard monitors plus the structural checks.
    bool check_refinement = false;

    // VALIDATION ONLY: ops skip the migration gate and route-pinning, racing
    // straight to their hashed shard — they can observe the detach window.
    // Cross-shard rename/exchange are exempt (they *are* the migrations the
    // stale ops race into).
    bool unsafe_stale_route = false;

    // VALIDATION ONLY: the driver retires the migration right after detach,
    // reporting success with the subtree stranded in staging.
    bool unsafe_abandon_migration = false;

    // Test hook: called (outside the namespace mutex) after the detach phase
    // commits, so tests can park the driver inside the migration window.
    std::function<void()> test_pause_after_detach;
  };

  ShardedFs();
  explicit ShardedFs(Options options);
  ~ShardedFs() override;

  ShardedFs(const ShardedFs&) = delete;
  ShardedFs& operator=(const ShardedFs&) = delete;

  uint32_t Capabilities() const override;

  // The routing entry point: every FileSystem virtual below wraps itself
  // into an FsOp and lands here.
  FsOpResult Dispatch(const FsOp& op) override;

  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // --- introspection ---------------------------------------------------------
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  AtomFs& shard(uint32_t i) { return *shards_[i]; }
  CrlhMonitor* monitor(uint32_t i) { return monitors_.empty() ? nullptr : monitors_[i].get(); }

  uint64_t migrations_completed() const;
  uint64_t migrations_aborted() const;
  // OnHelpedLinearized(kCrossShard) edges emitted at migration commits.
  uint64_t cross_shard_help_edges() const;
  // Dispatch retries forced by an in-flight migration on the op's footprint.
  uint64_t stale_route_retries() const;

  // Namespace-level verdicts: ns violations plus every shard monitor's.
  bool ok() const;
  std::vector<std::string> violations() const;

  std::vector<Tid> Helplist() const;
  std::vector<CrlhMonitor::CompletedRecord> Completed() const;

  // Quiescent-only. Checks, in order: no leftover staging entries on any
  // shard root; each shard monitor's CheckQuiescent against its concrete
  // snapshot (when monitored); and, under Options::check_refinement, the
  // namespace history replayed against a fresh SpecFs (result equivalence
  // per op + structural equality of the final states). Appends violations
  // and returns false on any failure.
  bool CheckQuiescent();

  // First violation (namespace-level or any shard's) with the namespace
  // ghost state and history, in the exact shape src/crlh/bundle.h formats
  // into a replayable bundle. Nullopt while everything holds.
  std::optional<CrlhMonitor::PostMortem> PostMortemState() const;

  // Merged quiescent snapshot: every shard's tree grafted under one root
  // (staging entries hidden, inums renumbered).
  SpecFs SnapshotSpec() const;

 private:
  struct Move {
    uint32_t src_shard = 0;
    uint32_t dst_shard = 0;
    Path src;
    Path dst;
    Path src_stage;  // /.m<id>[b] on src_shard
    Path dst_stage;  // /.m<id>[b] on dst_shard
  };

  // A published cross-shard operation descriptor. Guarded by ns_mu_ except
  // for the shard ops a claimant executes with the mutex released.
  struct ShardMigration {
    uint64_t id = 0;
    Tid driver = 0;
    OpCall call;
    enum class Phase : uint8_t { kPublished, kDetached, kCopied, kAttached, kDone, kAborted };
    Phase phase = Phase::kPublished;
    bool claimed = false;  // a thread is executing the current phase
    std::vector<std::string> comps;  // root-level footprint
    std::vector<Move> moves;         // 1 (rename) or 2 (exchange)
    size_t detached = 0;             // moves successfully detached so far
    Status result = Status::Ok();
    std::set<Tid> helpers;           // non-driver threads that ran a phase
  };

  FsOpResult DispatchRooted(Tid tid, const FsOp& op);
  FsOpResult DispatchGlobal(Tid tid, const FsOp& op);
  // Publishes the operation descriptor and drives the two-shard commit.
  // Requires lk held (no migration may be touching op's footprint).
  FsOpResult RunMigration(std::unique_lock<std::mutex>& lk, Tid tid, const FsOp& op,
                          const std::vector<std::string>& comps);

  // Claim-execute-advance loop shared by the driver and helpers; returns
  // when the migration is done or aborted. Requires lk held; releases it
  // around shard ops.
  void DriveMigrationLocked(std::unique_lock<std::mutex>& lk, Tid tid,
                            std::shared_ptr<ShardMigration> m);
  // Executes one phase's shard ops. Called WITHOUT ns_mu_; returns the next
  // phase (kAborted on failure, with m->result set).
  ShardMigration::Phase ExecutePhase(ShardMigration& m, ShardMigration::Phase phase);
  // At kDone/kAborted: computes the cross-shard helping set over the
  // namespace pool and emits the help events. Requires ns_mu_.
  void EmitHelpEventsLocked(ShardMigration& m);

  void PinLocked(const std::vector<std::string>& comps);
  void UnpinLocked(const std::vector<std::string>& comps);
  ShardMigration* FindMigrationTouchingLocked(const std::vector<std::string>& comps);

  void RecordLocked(Tid tid, const FsOp& op, const FsOpResult& r);
  void ViolationLocked(const std::string& message);

  FsOpResult RunOnShard(uint32_t s, const FsOp& op);

  Options opts_;
  std::vector<std::unique_ptr<AtomFs>> shards_;
  std::vector<std::unique_ptr<CrlhMonitor>> monitors_;
  std::vector<std::unique_ptr<TeeObserver>> tees_;

  mutable std::mutex ns_mu_;
  std::condition_variable ns_cv_;
  ShardRouter router_;
  std::map<std::string, uint32_t> inflight_;  // pinned ops per root-level name
  uint32_t inflight_global_ = 0;              // root readdir/stat in flight
  std::map<uint64_t, std::shared_ptr<ShardMigration>> active_;
  uint64_t next_migration_ = 1;
  uint64_t ns_seq_ = 0;

  std::map<Tid, Descriptor> ns_pool_;
  std::vector<Tid> ns_helplist_;
  std::vector<CrlhMonitor::CompletedRecord> ns_history_;
  std::vector<std::string> ns_violations_;
  uint64_t first_violation_seq_ = 0;
  SpecFs ns_abstract_;  // filled by the refinement replay in CheckQuiescent

  uint64_t migrations_completed_ = 0;
  uint64_t migrations_aborted_ = 0;
  uint64_t cross_help_edges_ = 0;
  uint64_t stale_retries_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SHARD_SHARDED_FS_H_
