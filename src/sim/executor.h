// Execution abstraction: real threads/mutexes vs. a deterministic
// virtual-time multicore simulator.
//
// The paper evaluates AtomFS scalability on a 16-core Xeon. This repository
// runs on arbitrary hosts (including single-core CI machines), so the file
// systems acquire their locks and account their CPU work through an Executor
// rather than using std::mutex directly:
//
//   * RealExecutor  - std::mutex, wall-clock time. Used for functional tests
//     and single-threaded benchmarks.
//   * SimExecutor   - cooperative scheduler with virtual time and a
//     configurable core count. The *same* file-system code runs under it,
//     so lock-contention structure (who waits for whom, and for how long) is
//     measured exactly; host parallelism becomes irrelevant. Deterministic.
//
// The simulator's machine model: a thread alternates between CPU segments
// (Work(cost)) and synchronization points (Lock/Unlock). CPU segments are
// greedily assigned to the earliest-available core, so with T runnable
// threads and C cores the aggregate rate is min(T, C) - exactly the quantity
// a speedup curve measures. Lock waits pass virtual time through to the
// waiter. Only one host thread executes at any instant, so SimExecutor runs
// correctly (and deterministically) on a single-core host.

#ifndef ATOMFS_SRC_SIM_EXECUTOR_H_
#define ATOMFS_SRC_SIM_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/rand.h"

namespace atomfs {

// A mutual-exclusion lock created by an Executor.
class Lockable {
 public:
  virtual ~Lockable() = default;
  virtual void Lock() = 0;
  virtual void Unlock() = 0;
};

// RAII guard over Lockable.
class LockGuard {
 public:
  explicit LockGuard(Lockable& lock) : lock_(&lock) { lock_->Lock(); }
  ~LockGuard() { Release(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  void Release() {
    if (lock_ != nullptr) {
      lock_->Unlock();
      lock_ = nullptr;
    }
  }

 private:
  Lockable* lock_;
};

class Executor {
 public:
  virtual ~Executor() = default;

  virtual std::unique_ptr<Lockable> CreateLock() = 0;

  // Models `cost_ns` nanoseconds of CPU work by the calling thread. Under
  // RealExecutor this is a no-op (real work takes real time); under
  // SimExecutor it advances virtual time subject to core availability.
  virtual void Work(uint64_t cost_ns) = 0;

  // Current time in nanoseconds (virtual under simulation).
  virtual uint64_t NowNanos() = 0;

  // Process-wide real executor.
  static Executor& Real();
};

// Deterministic virtual-time simulator. Usage:
//
//   SimExecutor sim(/*cores=*/16);
//   AtomFs fs(AtomFs::Options{.executor = &sim});
//   for (int t = 0; t < kThreads; ++t) sim.Spawn([&] { ...fs ops... });
//   sim.Run();
//   double seconds = sim.GlobalVirtualNanos() * 1e-9;
//
// Spawn/Run may be repeated (e.g. a setup phase followed by a measured
// phase). Work/Lock/Unlock must only be called from spawned threads.
// How the simulator chooses among runnable threads.
//
//   kMinVtime  - earliest-virtual-time first: the causality-preserving
//                default used for performance measurements.
//   kRandom    - uniform seeded choice at every scheduling point: a schedule
//                fuzzer (far more adversarial interleavings than OS timing).
//   kScripted  - follows an explicit decision sequence and records every
//                decision taken; the basis of exhaustive schedule
//                exploration (src/crlh/explore.h).
enum class SchedulePolicy : uint8_t {
  kMinVtime,
  kRandom,
  kScripted,
};

struct ScheduleOptions {
  SchedulePolicy policy = SchedulePolicy::kMinVtime;
  uint64_t seed = 1;                  // kRandom
  std::vector<uint32_t> script;       // kScripted: decision indices to replay
  // If false, Work() charges virtual time without yielding to the
  // scheduler, so only lock operations are scheduling points. Exploration
  // uses this to keep the decision tree tractable.
  bool yield_on_work = true;
};

class SimExecutor : public Executor {
 public:
  explicit SimExecutor(uint32_t cores);
  SimExecutor(uint32_t cores, ScheduleOptions schedule);
  ~SimExecutor() override;

  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  std::unique_ptr<Lockable> CreateLock() override;
  void Work(uint64_t cost_ns) override;
  uint64_t NowNanos() override;

  void Spawn(std::function<void()> fn);
  void Run();

  // Virtual makespan: the largest virtual time reached by any thread.
  uint64_t GlobalVirtualNanos() const { return max_vtime_; }

  // Total CPU work charged (sum of Work costs); useful for utilization.
  uint64_t TotalWorkNanos() const { return total_work_; }

  uint32_t cores() const { return static_cast<uint32_t>(core_avail_.size()); }

  // Scripted/random runs: the decision index taken at each scheduling point
  // that had more than one runnable thread, and the number of runnable
  // threads ("fanout") at that point. A script shorter than the trace is
  // padded with decision 0; exploration uses the fanouts to enumerate the
  // untaken branches.
  const std::vector<uint32_t>& ScheduleTrace() const { return trace_; }
  const std::vector<uint32_t>& ScheduleFanouts() const { return fanouts_; }

 private:
  friend class SimMutex;

  enum class ThreadState : uint8_t { kReady, kRunning, kBlocked, kDone };

  struct SimThread {
    std::thread host;
    std::condition_variable cv;
    ThreadState state = ThreadState::kReady;
    bool resume = false;  // handshake flag: scheduler granted the CPU
    uint64_t vtime = 0;
    std::function<void()> fn;
  };

  // All private methods require mu_ held.
  void ChargeLocked(SimThread* t, uint64_t cost);
  void YieldToSchedulerLocked(std::unique_lock<std::mutex>& lk, SimThread* self);
  void BlockLocked(std::unique_lock<std::mutex>& lk, SimThread* self);
  SimThread* PickNextLocked();
  SimThread* CurrentThread();

  ScheduleOptions schedule_;
  Rng schedule_rng_{1};
  std::vector<uint32_t> trace_;
  std::vector<uint32_t> fanouts_;
  size_t script_pos_ = 0;

  std::mutex mu_;
  std::condition_variable scheduler_cv_;
  bool scheduler_waiting_ = false;
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::vector<uint64_t> core_avail_;
  uint64_t max_vtime_ = 0;
  uint64_t total_work_ = 0;
  uint64_t live_threads_ = 0;
};

// Runs a single function to completion on the simulator (setup phases).
void RunInSim(SimExecutor& sim, std::function<void()> fn);

}  // namespace atomfs

#endif  // ATOMFS_SRC_SIM_EXECUTOR_H_
