#include "src/sim/executor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/util/check.h"

namespace atomfs {
namespace {

// Virtual cost of a lock acquire / release, nanoseconds. Small relative to
// the Work() costs the file systems charge, but non-zero so that pure lock
// traffic still consumes simulated CPU.
constexpr uint64_t kLockCostNanos = 25;
constexpr uint64_t kUnlockCostNanos = 15;

// Identifies the SimExecutor thread hosting the calling host thread.
thread_local void* g_current_sim_thread = nullptr;

class RealMutex : public Lockable {
 public:
  void Lock() override { mu_.lock(); }
  void Unlock() override { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class RealExecutor : public Executor {
 public:
  std::unique_ptr<Lockable> CreateLock() override { return std::make_unique<RealMutex>(); }

  void Work(uint64_t cost_ns) override {
    // Real work takes real time; modeled cost is not replayed.
    (void)cost_ns;
  }

  uint64_t NowNanos() override {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count());
  }
};

}  // namespace

Executor& Executor::Real() {
  static RealExecutor* executor = new RealExecutor();
  return *executor;
}

// --- SimExecutor -----------------------------------------------------------

// A simulated mutex. Ownership hand-off happens inside the scheduler lock:
// the releasing thread transfers the lock directly to the first waiter and
// carries virtual time across (the waiter cannot resume earlier than the
// release).
class SimMutex : public Lockable {
 public:
  explicit SimMutex(SimExecutor* ex) : ex_(ex) {}

  void Lock() override {
    std::unique_lock<std::mutex> lk(ex_->mu_);
    auto* self = ex_->CurrentThread();
    ATOMFS_CHECK(self != nullptr && "SimExecutor locks must be used from spawned sim threads");
    ex_->ChargeLocked(self, kLockCostNanos);
    if (held_) {
      waiters_.push_back(self);
      ex_->BlockLocked(lk, self);
      // Ownership was transferred to us by the unlocker; vtime updated there.
    } else {
      held_ = true;
      self->vtime = std::max(self->vtime, free_at_);
      ex_->YieldToSchedulerLocked(lk, self);
    }
  }

  void Unlock() override {
    std::unique_lock<std::mutex> lk(ex_->mu_);
    auto* self = ex_->CurrentThread();
    ATOMFS_CHECK(self != nullptr);
    ATOMFS_CHECK(held_);
    ex_->ChargeLocked(self, kUnlockCostNanos);
    if (!waiters_.empty()) {
      SimExecutor::SimThread* next = waiters_.front();
      waiters_.pop_front();
      next->vtime = std::max(next->vtime, self->vtime);
      next->state = SimExecutor::ThreadState::kReady;
    } else {
      held_ = false;
      free_at_ = self->vtime;
    }
    ex_->YieldToSchedulerLocked(lk, self);
  }

 private:
  SimExecutor* ex_;
  bool held_ = false;
  uint64_t free_at_ = 0;
  std::deque<SimExecutor::SimThread*> waiters_;
};

SimExecutor::SimExecutor(uint32_t cores) : SimExecutor(cores, ScheduleOptions{}) {}

SimExecutor::SimExecutor(uint32_t cores, ScheduleOptions schedule)
    : schedule_(std::move(schedule)), schedule_rng_(schedule_.seed) {
  ATOMFS_CHECK(cores > 0);
  core_avail_.assign(cores, 0);
}

SimExecutor::~SimExecutor() {
  for (auto& t : threads_) {
    if (t->host.joinable()) {
      t->host.join();
    }
  }
}

std::unique_ptr<Lockable> SimExecutor::CreateLock() { return std::make_unique<SimMutex>(this); }

SimExecutor::SimThread* SimExecutor::CurrentThread() {
  return static_cast<SimThread*>(g_current_sim_thread);
}

void SimExecutor::ChargeLocked(SimThread* t, uint64_t cost) {
  auto it = std::min_element(core_avail_.begin(), core_avail_.end());
  const uint64_t start = std::max(*it, t->vtime);
  t->vtime = start + cost;
  *it = t->vtime;
  max_vtime_ = std::max(max_vtime_, t->vtime);
  total_work_ += cost;
}

void SimExecutor::YieldToSchedulerLocked(std::unique_lock<std::mutex>& lk, SimThread* self) {
  self->state = ThreadState::kReady;
  scheduler_waiting_ = false;
  scheduler_cv_.notify_one();
  while (!self->resume) {
    self->cv.wait(lk);
  }
  self->resume = false;
  self->state = ThreadState::kRunning;
}

void SimExecutor::BlockLocked(std::unique_lock<std::mutex>& lk, SimThread* self) {
  self->state = ThreadState::kBlocked;
  scheduler_waiting_ = false;
  scheduler_cv_.notify_one();
  while (!self->resume) {
    self->cv.wait(lk);
  }
  self->resume = false;
  self->state = ThreadState::kRunning;
}

SimExecutor::SimThread* SimExecutor::PickNextLocked() {
  std::vector<SimThread*> ready;
  for (auto& t : threads_) {
    if (t->state == ThreadState::kReady) {
      ready.push_back(t.get());
    }
  }
  if (ready.empty()) {
    return nullptr;
  }
  if (ready.size() == 1) {
    return ready.front();
  }
  switch (schedule_.policy) {
    case SchedulePolicy::kMinVtime: {
      SimThread* best = ready.front();
      for (SimThread* t : ready) {
        if (t->vtime < best->vtime) {
          best = t;
        }
      }
      return best;
    }
    case SchedulePolicy::kRandom: {
      const uint32_t choice = static_cast<uint32_t>(schedule_rng_.Below(ready.size()));
      trace_.push_back(choice);
      fanouts_.push_back(static_cast<uint32_t>(ready.size()));
      return ready[choice];
    }
    case SchedulePolicy::kScripted: {
      uint32_t choice = 0;
      if (script_pos_ < schedule_.script.size()) {
        choice = schedule_.script[script_pos_];
        if (choice >= ready.size()) {
          choice = static_cast<uint32_t>(ready.size()) - 1;
        }
      }
      ++script_pos_;
      trace_.push_back(choice);
      fanouts_.push_back(static_cast<uint32_t>(ready.size()));
      return ready[choice];
    }
  }
  return ready.front();
}

void SimExecutor::Spawn(std::function<void()> fn) {
  std::unique_lock<std::mutex> lk(mu_);
  auto t = std::make_unique<SimThread>();
  t->fn = std::move(fn);
  // New threads join the simulation at the current makespan so a second
  // Spawn/Run round (e.g. a measured phase after setup) starts "now".
  t->vtime = max_vtime_;
  SimThread* raw = t.get();
  ++live_threads_;
  threads_.push_back(std::move(t));
  raw->host = std::thread([this, raw] {
    g_current_sim_thread = raw;
    {
      std::unique_lock<std::mutex> inner(mu_);
      while (!raw->resume) {
        raw->cv.wait(inner);
      }
      raw->resume = false;
      raw->state = ThreadState::kRunning;
    }
    raw->fn();
    {
      std::unique_lock<std::mutex> inner(mu_);
      raw->state = ThreadState::kDone;
      --live_threads_;
      scheduler_waiting_ = false;
      scheduler_cv_.notify_one();
    }
  });
}

void SimExecutor::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (live_threads_ > 0) {
    SimThread* next = PickNextLocked();
    if (next == nullptr) {
      std::fprintf(stderr, "SimExecutor: deadlock, %llu live threads all blocked\n",
                   static_cast<unsigned long long>(live_threads_));
      std::abort();
    }
    next->resume = true;
    next->cv.notify_one();
    scheduler_waiting_ = true;
    while (scheduler_waiting_) {
      scheduler_cv_.wait(lk);
    }
  }
}

void SimExecutor::Work(uint64_t cost_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  SimThread* self = CurrentThread();
  ATOMFS_CHECK(self != nullptr && "SimExecutor::Work must be called from a spawned sim thread");
  ChargeLocked(self, cost_ns);
  if (schedule_.yield_on_work) {
    YieldToSchedulerLocked(lk, self);
  }
}

uint64_t SimExecutor::NowNanos() {
  std::unique_lock<std::mutex> lk(mu_);
  SimThread* self = CurrentThread();
  return self != nullptr ? self->vtime : max_vtime_;
}

void RunInSim(SimExecutor& sim, std::function<void()> fn) {
  sim.Spawn(std::move(fn));
  sim.Run();
}

}  // namespace atomfs
