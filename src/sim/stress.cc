#include "src/sim/stress.h"

#include <chrono>
#include <thread>

namespace atomfs {

void RaceBarrier::Arrive() {
  const uint32_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arrival: reset the count for the next round *before* releasing
    // the cohort — a released thread may re-enter Arrive immediately.
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  // Spin with yields: on an undersubscribed host the yield lets the missing
  // parties run; the generation counter makes the barrier reusable and
  // immune to a fast thread lapping a slow one.
  int spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins % 64 == 0) {
      std::this_thread::yield();
    }
  }
}

void ScheduleShaker::Perturb() {
  switch (rng_.Below(16)) {
    case 0:
    case 1:
    case 2: {
      // Short spin: shifts phase without a scheduling point.
      volatile uint64_t sink = 0;
      const uint64_t n = rng_.Between(16, 512);
      for (uint64_t i = 0; i < n; ++i) {
        sink += i;
      }
      break;
    }
    case 3:
    case 4:
    case 5:
      // Yield: on a single core this is the preemption that lets another
      // thread land inside the current thread's critical window.
      std::this_thread::yield();
      break;
    case 6:
      // Rare sleep: long enough for timer-driven paths (idle sweeps, reap
      // timers) to fire mid-operation.
      std::this_thread::sleep_for(std::chrono::microseconds(rng_.Between(50, 300)));
      break;
    default:
      break;  // run hot: bursts of unperturbed operations keep throughput up
  }
}

}  // namespace atomfs
