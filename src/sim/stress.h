// Race-hunt hooks: deterministic-seed utilities for provoking the thread
// interleavings that sanitizers need to *observe* before they can report.
//
// TSan only flags a race it sees happen — two unsynchronized accesses whose
// vector clocks overlap. On a quiet machine (or a single-core CI box) the
// OS scheduler runs stress threads largely back-to-back and whole classes
// of orderings never occur. These hooks bend the schedule:
//
//   * RaceBarrier lines threads up at a start gate so the contended region
//     begins with maximal overlap instead of a staggered ramp.
//   * ScheduleShaker injects seeded perturbations (spin, yield, short
//     sleeps) at caller-chosen points, which on a single core forces
//     preemption inside critical windows and on many cores de-correlates
//     the threads' phase. The same seed reproduces the same perturbation
//     sequence per thread, so a sanitizer report from the stress harness is
//     replayable (docs/SANITIZERS.md).
//
// Both are host-thread utilities, deliberately independent of SimExecutor:
// the simulator serializes execution (one host thread runs at a time), which
// is exactly what a race hunt must avoid. They live in src/sim because they
// are schedule-control machinery, the adversarial sibling of the simulator's
// deterministic scheduler.

#ifndef ATOMFS_SRC_SIM_STRESS_H_
#define ATOMFS_SRC_SIM_STRESS_H_

#include <atomic>
#include <cstdint>

#include "src/util/rand.h"

namespace atomfs {

// Reusable spin barrier. Arrive() blocks (spinning, with yields) until all
// `parties` threads arrive, then releases the whole cohort at once; the
// barrier then resets for the next round, so it can gate every iteration of
// a stress loop, re-aligning the threads each time.
class RaceBarrier {
 public:
  explicit RaceBarrier(uint32_t parties) : parties_(parties) {}

  RaceBarrier(const RaceBarrier&) = delete;
  RaceBarrier& operator=(const RaceBarrier&) = delete;

  void Arrive();

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint32_t> generation_{0};
};

// Seeded schedule perturbation. Each thread owns one shaker; Perturb() is
// sprinkled between operations and, with the probabilities below, does
// nothing / spins a few hundred cycles / yields / sleeps O(100us). The
// mix is derived only from (seed, thread), never from wall time, so a
// given seed replays the same perturbation sequence.
class ScheduleShaker {
 public:
  ScheduleShaker(uint64_t seed, uint32_t thread_index)
      : rng_(seed * 0x9e3779b97f4a7c15ULL + thread_index + 1) {}

  void Perturb();

 private:
  Rng rng_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SIM_STRESS_H_
