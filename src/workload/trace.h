// Operation traces: a line-oriented text format for recording streams of
// file-system operations and replaying them against any FileSystem.
//
// Format (one op per line, fields separated by single spaces):
//
//   mkdir  <path>
//   mknod  <path>
//   rmdir  <path>
//   unlink <path>
//   rename <src> <dst>
//   exchange <a> <b>
//   stat   <path>
//   readdir <path>
//   read   <path> <offset> <len>
//   write  <path> <offset> <hex-bytes>
//   truncate <path> <size>
//
// Lines starting with '#' and blank lines are ignored. Paths are the
// normalized absolute form (no spaces; names produced by the workload
// generators satisfy this).
//
// Traces decouple workload generation from execution: capture a run once
// (e.g. from a workload driver), then replay it bit-identically against any
// implementation for debugging, differential testing, or benchmarking.

#ifndef ATOMFS_SRC_WORKLOAD_TRACE_H_
#define ATOMFS_SRC_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"
#include "src/core/observer.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Serializes one call to its trace line (no trailing newline).
std::string FormatTraceLine(const OpCall& call);

// Parses one trace line; kInval for malformed input.
Result<OpCall> ParseTraceLine(std::string_view line);

// Parses a whole trace; stops with the error of the first malformed line
// (comments/blank lines skipped).
Result<std::vector<OpCall>> ParseTrace(std::istream& in);

// Serializes a call list, one line each.
void WriteTrace(const std::vector<OpCall>& calls, std::ostream& out);

// Exports a file-system state as a trace that recreates it on an empty
// file system (mkdirs in path order, then file writes). Lets the trace
// format double as a state snapshot.
std::vector<OpCall> ExportAsTrace(const SpecFs& state);

struct ReplayStats {
  uint64_t ops = 0;
  uint64_t failed_ops = 0;  // ops that returned a non-OK status
};

// Replays the calls in order against `fs`.
ReplayStats ReplayTrace(FileSystem& fs, const std::vector<OpCall>& calls);

// An FsObserver that records every completed call into a trace buffer
// (thread-safe; ops are appended in completion order).
class TraceRecorder : public FsObserver {
 public:
  void OnOpBegin(Tid tid, const OpCall& call) override;
  void OnOpEnd(Tid tid, const OpResult& result) override;

  std::vector<OpCall> Take();

 private:
  std::mutex mu_;
  std::map<Tid, OpCall> inflight_;
  std::vector<OpCall> calls_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_WORKLOAD_TRACE_H_
