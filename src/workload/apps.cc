#include "src/workload/apps.h"

#include <vector>

#include "src/util/check.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

// Fills a buffer with word-ish pseudo-text so grep has something to scan.
std::vector<std::byte> MakeContent(Rng& rng, uint64_t bytes, const std::string& rare_word) {
  std::string text;
  text.reserve(bytes + 16);
  while (text.size() < bytes) {
    if (rng.Chance(1, 97)) {
      text += rare_word;
    } else {
      text += rng.Name(rng.Between(2, 9));
    }
    text.push_back(rng.Chance(1, 8) ? '\n' : ' ');
  }
  text.resize(bytes);
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  return std::vector<std::byte>(data, data + text.size());
}

// Depth-first enumeration of all files under `root`.
void ListFiles(FileSystem& fs, const std::string& root, std::vector<std::string>* files,
               AppStats* stats) {
  auto entries = fs.ReadDir(root);
  ++stats->ops;
  if (!entries.ok()) {
    return;
  }
  for (const auto& e : *entries) {
    const std::string path = (root == "/" ? "" : root) + "/" + e.name;
    if (e.type == FileType::kDir) {
      ListFiles(fs, path, files, stats);
    } else {
      files->push_back(path);
    }
  }
}

std::vector<std::byte> ReadWhole(FileSystem& fs, const std::string& path, AppStats* stats) {
  auto attr = fs.Stat(path);
  ++stats->ops;
  ATOMFS_CHECK(attr.ok());
  std::vector<std::byte> buf(attr->size);
  auto r = fs.Read(path, 0, std::span<std::byte>(buf));
  ATOMFS_CHECK(r.ok());
  ++stats->ops;
  stats->bytes += *r;
  buf.resize(*r);
  return buf;
}

void WriteWhole(FileSystem& fs, const std::string& path, std::span<const std::byte> data,
                AppStats* stats) {
  Status st = fs.Mknod(path);
  ATOMFS_CHECK(st.ok() || st.code() == Errc::kExist);
  auto w = fs.Write(path, 0, data);
  ATOMFS_CHECK(w.ok() && *w == data.size());
  stats->ops += 2;
  stats->bytes += data.size();
}

}  // namespace

AppStats BuildTree(FileSystem& fs, const std::string& root, const TreeSpec& spec) {
  AppStats stats;
  Rng rng(spec.seed);
  ATOMFS_CHECK(fs.Mkdir(root).ok());
  ++stats.ops;
  for (uint32_t d = 0; d < spec.dirs; ++d) {
    const std::string dir = root + "/d" + std::to_string(d);
    ATOMFS_CHECK(fs.Mkdir(dir).ok());
    ++stats.ops;
    for (uint32_t f = 0; f < spec.files_per_dir; ++f) {
      const std::string path = dir + "/src" + std::to_string(f) + ".c";
      const uint64_t bytes = rng.Between(spec.min_file_bytes, spec.max_file_bytes);
      auto content = MakeContent(rng, bytes, "needle");
      WriteWhole(fs, path, content, &stats);
    }
  }
  return stats;
}

AppStats RunGitClone(FileSystem& fs, const std::string& root, const TreeSpec& spec) {
  // Object store: the packed objects arrive first...
  AppStats stats = BuildTree(fs, root + "-git", spec);
  // ...then checkout materializes the work tree...
  AppStats checkout = RunCopyTree(fs, root + "-git", root);
  // ...and git stats every path to build the index.
  std::vector<std::string> files;
  ListFiles(fs, root, &files, &stats);
  for (const auto& f : files) {
    ATOMFS_CHECK(fs.Stat(f).ok());
    ++stats.ops;
  }
  stats.ops += checkout.ops;
  stats.bytes += checkout.bytes;
  return stats;
}

AppStats RunMakeBuild(FileSystem& fs, const std::string& root) {
  AppStats stats;
  std::vector<std::string> files;
  ListFiles(fs, root, &files, &stats);
  std::vector<std::string> objects;
  for (const auto& f : files) {
    auto content = ReadWhole(fs, f, &stats);
    // "Compile": emit an object file of half the source size.
    content.resize(content.size() / 2);
    const std::string obj = f + ".o";
    WriteWhole(fs, obj, content, &stats);
    objects.push_back(obj);
  }
  // "Link": concatenate all objects into one binary.
  uint64_t offset = 0;
  Status st = fs.Mknod(root + "/bin");
  ATOMFS_CHECK(st.ok() || st.code() == Errc::kExist);
  ++stats.ops;
  for (const auto& obj : objects) {
    auto content = ReadWhole(fs, obj, &stats);
    auto w = fs.Write(root + "/bin", offset, std::span<const std::byte>(content));
    ATOMFS_CHECK(w.ok());
    offset += *w;
    ++stats.ops;
    stats.bytes += *w;
  }
  return stats;
}

AppStats RunCopyTree(FileSystem& fs, const std::string& src_root, const std::string& dst_root) {
  AppStats stats;
  Status st = fs.Mkdir(dst_root);
  ATOMFS_CHECK(st.ok() || st.code() == Errc::kExist);
  ++stats.ops;
  auto entries = fs.ReadDir(src_root);
  ++stats.ops;
  ATOMFS_CHECK(entries.ok());
  for (const auto& e : *entries) {
    const std::string from = src_root + "/" + e.name;
    const std::string to = dst_root + "/" + e.name;
    if (e.type == FileType::kDir) {
      AppStats sub = RunCopyTree(fs, from, to);
      stats.ops += sub.ops;
      stats.bytes += sub.bytes;
    } else {
      auto content = ReadWhole(fs, from, &stats);
      WriteWhole(fs, to, content, &stats);
    }
  }
  return stats;
}

AppStats RunGrep(FileSystem& fs, const std::string& root, const std::string& needle) {
  AppStats stats;
  std::vector<std::string> files;
  ListFiles(fs, root, &files, &stats);
  for (const auto& f : files) {
    auto content = ReadWhole(fs, f, &stats);
    // Actually scan the bytes, like ripgrep would.
    const char* data = reinterpret_cast<const char*>(content.data());
    std::string_view view(data, content.size());
    size_t pos = 0;
    while ((pos = view.find(needle, pos)) != std::string_view::npos) {
      ++stats.matches;
      pos += needle.size();
    }
  }
  return stats;
}

}  // namespace atomfs
