// Application-shaped workload drivers for the Figure 10 reproduction.
//
// The paper runs real applications (git clone of xv6-public, make of the xv6
// file system, cp -r of the qemu sources, ripgrep) over FUSE. Those binaries
// exercise the file system with characteristic operation mixes; the drivers
// here synthesize the same mixes directly against the FileSystem API:
//
//   * git-clone : metadata-heavy creation — many directories and small
//     files written once (object store + checkout), then a stat pass.
//   * make      : read-heavy — scan + read every source, write one object
//     per source, then read all objects and write one linked binary.
//   * cp -r     : full-tree traversal with paired read/write of every file.
//   * ripgrep   : full-tree traversal reading every file and actually
//     scanning the bytes for a needle.

#ifndef ATOMFS_SRC_WORKLOAD_APPS_H_
#define ATOMFS_SRC_WORKLOAD_APPS_H_

#include <cstdint>
#include <string>

#include "src/vfs/filesystem.h"

namespace atomfs {

struct AppStats {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  uint64_t matches = 0;  // grep only
};

// Parameters for a synthetic source tree.
struct TreeSpec {
  uint32_t dirs = 32;            // directories (flat under the root dir)
  uint32_t files_per_dir = 12;   // files per directory
  uint64_t min_file_bytes = 512;
  uint64_t max_file_bytes = 16 << 10;
  uint64_t seed = 42;
};

// Creates a source tree under `root` (which must not exist yet).
AppStats BuildTree(FileSystem& fs, const std::string& root, const TreeSpec& spec);

// Clone: build the tree (objects + checkout) and stat every path.
AppStats RunGitClone(FileSystem& fs, const std::string& root, const TreeSpec& spec);

// Make: read every file under `root`, write a .o file of half the size next
// to it, then read all .o files and write /bin at the root.
AppStats RunMakeBuild(FileSystem& fs, const std::string& root);

// cp -r src dst.
AppStats RunCopyTree(FileSystem& fs, const std::string& src_root, const std::string& dst_root);

// ripgrep: scan every file under root for `needle`.
AppStats RunGrep(FileSystem& fs, const std::string& root, const std::string& needle);

}  // namespace atomfs

#endif  // ATOMFS_SRC_WORKLOAD_APPS_H_
