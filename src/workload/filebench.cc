#include "src/workload/filebench.h"

#include <vector>

#include "src/util/check.h"
#include "src/util/rand.h"

namespace atomfs {

FilebenchProfile FilebenchProfile::Fileserver() {
  FilebenchProfile p;
  p.name = "fileserver";
  p.dirs = 526;  // as reported in the paper's §7.3
  p.files = 10000;
  p.file_bytes = 8 << 10;
  p.io_bytes = 4 << 10;
  return p;
}

FilebenchProfile FilebenchProfile::Webproxy() {
  FilebenchProfile p;
  p.name = "webproxy";
  p.dirs = 2;  // "Webproxy involves only two directories"
  p.files = 10000;
  p.file_bytes = 4 << 10;
  p.io_bytes = 4 << 10;
  return p;
}

FilebenchProfile FilebenchProfile::Varmail() {
  FilebenchProfile p;
  p.name = "varmail";
  p.dirs = 64;
  p.files = 4000;
  p.file_bytes = 2 << 10;  // small messages
  p.io_bytes = 2 << 10;
  return p;
}

namespace {

std::string DirPath(const FilebenchProfile& profile, uint32_t dir) {
  return profile.root + "/d" + std::to_string(dir);
}

std::string FilePath(const FilebenchProfile& profile, uint32_t file_idx) {
  return DirPath(profile, file_idx % profile.dirs) + "/f" + std::to_string(file_idx);
}

}  // namespace

void FilebenchSetup(FileSystem& fs, const FilebenchProfile& profile, uint64_t seed) {
  Rng rng(seed);
  ATOMFS_CHECK(fs.Mkdir(profile.root).ok());
  for (uint32_t d = 0; d < profile.dirs; ++d) {
    ATOMFS_CHECK(fs.Mkdir(DirPath(profile, d)).ok());
  }
  std::vector<std::byte> buf(profile.file_bytes, std::byte{0x42});
  for (uint32_t f = 0; f < profile.files; ++f) {
    const std::string path = FilePath(profile, f);
    ATOMFS_CHECK(fs.Mknod(path).ok());
    const uint64_t bytes = rng.Between(profile.file_bytes / 2, profile.file_bytes);
    auto w = fs.Write(path, 0, std::span<const std::byte>(buf.data(), bytes));
    ATOMFS_CHECK(w.ok());
  }
}

WorkerStats FilebenchWorker(FileSystem& fs, const FilebenchProfile& profile, uint64_t seed,
                            uint64_t op_count) {
  Rng rng(seed);
  WorkerStats stats;
  std::vector<std::byte> buf(profile.io_bytes, std::byte{0x37});
  auto note = [&stats](bool ok) {
    ++stats.ops;
    if (!ok) {
      ++stats.failures;
    }
  };
  const bool webproxy = profile.name == "webproxy";
  const bool varmail = profile.name == "varmail";
  while (stats.ops < op_count) {
    const uint32_t idx = static_cast<uint32_t>(rng.Below(profile.files));
    const std::string path = FilePath(profile, idx);
    if (varmail) {
      // varmail loop: delete a message, create+append a new one, then read
      // two messages whole (the fsyncs of the real profile have no analog in
      // an in-memory FS).
      note(fs.Unlink(path).ok());
      note(fs.Mknod(path).ok());
      note(fs.Write(path, 0, std::span<const std::byte>(buf)).ok());
      for (int r = 0; r < 2; ++r) {
        const std::string msg =
            FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)));
        note(fs.Read(msg, 0, std::span<std::byte>(buf)).ok());
      }
      continue;
    }
    if (webproxy) {
      // webproxy personality: delete, re-create, append, then 5 reads of
      // random files.
      note(fs.Unlink(path).ok());
      note(fs.Mknod(path).ok());
      note(fs.Write(path, 0, std::span<const std::byte>(buf)).ok());
      for (int r = 0; r < 5; ++r) {
        const std::string victim =
            FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)));
        auto attr = fs.Stat(victim);
        ++stats.ops;
        if (!attr.ok()) {
          ++stats.failures;
          continue;
        }
        note(fs.Read(victim, 0, std::span<std::byte>(buf)).ok());
      }
    } else {
      // fileserver personality: create+write, append, read, delete, stat —
      // one of each per loop, over independently chosen files.
      const std::string fresh =
          FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)));
      Status created = fs.Mknod(fresh);
      note(created.ok() || created.code() == Errc::kExist);
      note(fs.Write(fresh, 0, std::span<const std::byte>(buf)).ok());

      const std::string append_target =
          FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)));
      auto attr = fs.Stat(append_target);
      ++stats.ops;
      if (attr.ok()) {
        note(fs.Write(append_target, attr->size, std::span<const std::byte>(buf)).ok());
      } else {
        ++stats.failures;
      }

      note(fs.Read(path, 0, std::span<std::byte>(buf)).ok());
      note(fs.Unlink(FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)))).ok());
      note(fs.Stat(FilePath(profile, static_cast<uint32_t>(rng.Below(profile.files)))).ok());
    }
  }
  return stats;
}

}  // namespace atomfs
