// Filebench-style multi-threaded workload profiles (paper §7.3).
//
// The paper uses the two most common Filebench personalities:
//   * Fileserver - "526 different directories and about 10000 files"; each
//     worker loops { create+write, open+append, open+read-whole, delete,
//     stat } over randomly chosen files spread across many directories.
//     Plenty of distinct inodes => fine-grained locking pays off.
//   * Webproxy  - only two directories; each worker loops { delete, create,
//     append, then five open/read-whole }. Nearly all lock traffic lands on
//     two directory inodes => lock coupling gains little (the paper measures
//     1.16x vs. 1.46x for fileserver).
//
// Workers are plain callables so they can run on real threads or on
// SimExecutor::Spawn for the virtual-time scalability measurements.

#ifndef ATOMFS_SRC_WORKLOAD_FILEBENCH_H_
#define ATOMFS_SRC_WORKLOAD_FILEBENCH_H_

#include <cstdint>
#include <string>

#include "src/vfs/filesystem.h"

namespace atomfs {

struct FilebenchProfile {
  std::string name;
  std::string root = "/fb";        // tree root; a sharded bench runs one
                                   // profile per tenant root (e.g. /fb0..N)
                                   // so each tenant homes on its own shard
  uint32_t dirs = 64;
  uint32_t files = 2000;
  uint64_t file_bytes = 8 << 10;   // mean created-file size
  uint64_t io_bytes = 4 << 10;     // append / read chunk

  static FilebenchProfile Fileserver();
  static FilebenchProfile Webproxy();
  // Mail-server personality (extension; not in the paper's Figure 11):
  // per-message create/append/read/delete over many small files in a
  // moderate number of directories.
  static FilebenchProfile Varmail();
};

// Creates the directory tree and initial file population.
void FilebenchSetup(FileSystem& fs, const FilebenchProfile& profile, uint64_t seed);

struct WorkerStats {
  uint64_t ops = 0;
  uint64_t failures = 0;  // benign races (e.g. a chosen file was deleted)
};

// Runs `op_count` operations of the profile's mix. Each worker must get a
// distinct seed. Safe to run concurrently with other workers on the same fs.
WorkerStats FilebenchWorker(FileSystem& fs, const FilebenchProfile& profile, uint64_t seed,
                            uint64_t op_count);

}  // namespace atomfs

#endif  // ATOMFS_SRC_WORKLOAD_FILEBENCH_H_
