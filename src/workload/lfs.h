// LFS microbenchmarks (Rosenblum & Ousterhout), as used by the FSCQ line of
// work and by the paper's Figure 10:
//   * largefile  - sequentially write one large file (10 MB), then read it
//     back sequentially.
//   * smallfile  - create / write / read / delete many small files
//     (10,000 x 1 KB).

#ifndef ATOMFS_SRC_WORKLOAD_LFS_H_
#define ATOMFS_SRC_WORKLOAD_LFS_H_

#include <cstdint>

#include "src/vfs/filesystem.h"

namespace atomfs {

struct LfsStats {
  uint64_t ops = 0;
  uint64_t bytes = 0;
};

// Writes `file_bytes` sequentially in `chunk` sized writes to /largefile,
// reads it back, then unlinks it.
LfsStats RunLargeFile(FileSystem& fs, uint64_t file_bytes = 10ull << 20,
                      uint64_t chunk = 64 << 10);

// Creates `files` files of `file_bytes` each under /small (one directory),
// reads each back, then deletes everything.
LfsStats RunSmallFile(FileSystem& fs, uint32_t files = 10000, uint64_t file_bytes = 1 << 10);

}  // namespace atomfs

#endif  // ATOMFS_SRC_WORKLOAD_LFS_H_
