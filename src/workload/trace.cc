#include "src/workload/trace.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace atomfs {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string ToHex(const std::vector<std::byte>& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::byte b : data) {
    out.push_back(kHexDigits[static_cast<unsigned>(b) >> 4]);
    out.push_back(kHexDigits[static_cast<unsigned>(b) & 0xf]);
  }
  return out.empty() ? "-" : out;
}

Result<std::vector<std::byte>> FromHex(std::string_view hex) {
  if (hex == "-") {
    return std::vector<std::byte>{};
  }
  if (hex.size() % 2 != 0) {
    return Errc::kInval;
  }
  std::vector<std::byte> out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Errc::kInval;
    }
    out.push_back(static_cast<std::byte>((hi << 4) | lo));
  }
  return out;
}

Result<uint64_t> ParseU64(std::string_view token) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Errc::kInval;
  }
  return value;
}

}  // namespace

std::string FormatTraceLine(const OpCall& call) {
  std::ostringstream os;
  os << OpKindName(call.kind) << ' ' << call.a.ToString();
  switch (call.kind) {
    case OpKind::kRename:
    case OpKind::kExchange:
      os << ' ' << call.b.ToString();
      break;
    case OpKind::kRead:
      os << ' ' << call.offset << ' ' << call.len;
      break;
    case OpKind::kWrite:
      os << ' ' << call.offset << ' ' << ToHex(call.data);
      break;
    case OpKind::kTruncate:
      os << ' ' << call.offset;
      break;
    default:
      break;
  }
  return os.str();
}

Result<OpCall> ParseTraceLine(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::string verb;
  std::string a;
  if (!(in >> verb >> a)) {
    return Errc::kInval;
  }
  auto pa = ParsePath(a);
  if (!pa.ok()) {
    return pa.status();
  }
  auto need_path2 = [&in]() -> Result<Path> {
    std::string b;
    if (!(in >> b)) {
      return Errc::kInval;
    }
    return ParsePath(b);
  };
  auto need_u64 = [&in]() -> Result<uint64_t> {
    std::string tok;
    if (!(in >> tok)) {
      return Errc::kInval;
    }
    return ParseU64(tok);
  };

  if (verb == "mkdir") {
    return OpCall::MkdirOf(*pa);
  }
  if (verb == "mknod") {
    return OpCall::MknodOf(*pa);
  }
  if (verb == "rmdir") {
    return OpCall::RmdirOf(*pa);
  }
  if (verb == "unlink") {
    return OpCall::UnlinkOf(*pa);
  }
  if (verb == "stat") {
    return OpCall::StatOf(*pa);
  }
  if (verb == "readdir") {
    return OpCall::ReadDirOf(*pa);
  }
  if (verb == "rename" || verb == "exchange") {
    auto pb = need_path2();
    if (!pb.ok()) {
      return pb.status();
    }
    return verb == "rename" ? OpCall::RenameOf(*pa, *pb) : OpCall::ExchangeOf(*pa, *pb);
  }
  if (verb == "read") {
    auto off = need_u64();
    auto len = need_u64();
    if (!off.ok() || !len.ok()) {
      return Errc::kInval;
    }
    return OpCall::ReadOf(*pa, *off, *len);
  }
  if (verb == "write") {
    auto off = need_u64();
    if (!off.ok()) {
      return Errc::kInval;
    }
    std::string hex;
    if (!(in >> hex)) {
      return Errc::kInval;
    }
    auto data = FromHex(hex);
    if (!data.ok()) {
      return data.status();
    }
    return OpCall::WriteOf(*pa, *off, std::move(*data));
  }
  if (verb == "truncate") {
    auto size = need_u64();
    if (!size.ok()) {
      return Errc::kInval;
    }
    return OpCall::TruncateOf(*pa, *size);
  }
  return Errc::kInval;
}

Result<std::vector<OpCall>> ParseTrace(std::istream& in) {
  std::vector<OpCall> calls;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    auto call = ParseTraceLine(line);
    if (!call.ok()) {
      return call.status();
    }
    calls.push_back(std::move(*call));
  }
  return calls;
}

void WriteTrace(const std::vector<OpCall>& calls, std::ostream& out) {
  for (const auto& call : calls) {
    out << FormatTraceLine(call) << '\n';
  }
}

namespace {

void ExportSubtree(const SpecFs& state, Inum ino, const Path& at,
                   std::vector<OpCall>* calls) {
  const SpecInode* node = state.Find(ino);
  if (node == nullptr) {
    return;
  }
  if (node->type == FileType::kFile) {
    calls->push_back(OpCall::MknodOf(at));
    if (!node->data.empty()) {
      calls->push_back(OpCall::WriteOf(at, 0, node->data));
    }
    return;
  }
  if (ino != kRootInum) {
    calls->push_back(OpCall::MkdirOf(at));
  }
  for (const auto& [name, child] : node->links) {
    Path child_path = at;
    child_path.parts.push_back(name);
    ExportSubtree(state, child, child_path, calls);
  }
}

}  // namespace

std::vector<OpCall> ExportAsTrace(const SpecFs& state) {
  std::vector<OpCall> calls;
  ExportSubtree(state, kRootInum, Path{}, &calls);
  return calls;
}

ReplayStats ReplayTrace(FileSystem& fs, const std::vector<OpCall>& calls) {
  ReplayStats stats;
  for (const auto& call : calls) {
    OpResult result = RunOp(fs, call);
    ++stats.ops;
    if (!result.status.ok()) {
      ++stats.failed_ops;
    }
  }
  return stats;
}

void TraceRecorder::OnOpBegin(Tid tid, const OpCall& call) {
  std::lock_guard<std::mutex> lk(mu_);
  inflight_[tid] = call;
}

void TraceRecorder::OnOpEnd(Tid tid, const OpResult& result) {
  (void)result;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = inflight_.find(tid);
  if (it != inflight_.end()) {
    calls_.push_back(std::move(it->second));
    inflight_.erase(it);
  }
}

std::vector<OpCall> TraceRecorder::Take() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<OpCall> out = std::move(calls_);
  calls_.clear();
  return out;
}

}  // namespace atomfs
