#include "src/workload/lfs.h"

#include <string>
#include <vector>

#include "src/util/check.h"

namespace atomfs {

LfsStats RunLargeFile(FileSystem& fs, uint64_t file_bytes, uint64_t chunk) {
  LfsStats stats;
  ATOMFS_CHECK(fs.Mknod("/largefile").ok());
  ++stats.ops;
  std::vector<std::byte> buf(chunk, std::byte{0xa5});
  for (uint64_t off = 0; off < file_bytes; off += chunk) {
    const uint64_t n = std::min(chunk, file_bytes - off);
    auto w = fs.Write("/largefile", off, std::span<const std::byte>(buf.data(), n));
    ATOMFS_CHECK(w.ok() && *w == n);
    ++stats.ops;
    stats.bytes += n;
  }
  for (uint64_t off = 0; off < file_bytes; off += chunk) {
    auto r = fs.Read("/largefile", off, std::span<std::byte>(buf));
    ATOMFS_CHECK(r.ok());
    ++stats.ops;
    stats.bytes += *r;
  }
  ATOMFS_CHECK(fs.Unlink("/largefile").ok());
  ++stats.ops;
  return stats;
}

LfsStats RunSmallFile(FileSystem& fs, uint32_t files, uint64_t file_bytes) {
  LfsStats stats;
  ATOMFS_CHECK(fs.Mkdir("/small").ok());
  ++stats.ops;
  std::vector<std::byte> buf(file_bytes, std::byte{0x5a});
  for (uint32_t i = 0; i < files; ++i) {
    const std::string path = "/small/f" + std::to_string(i);
    ATOMFS_CHECK(fs.Mknod(path).ok());
    auto w = fs.Write(path, 0, std::span<const std::byte>(buf));
    ATOMFS_CHECK(w.ok() && *w == file_bytes);
    stats.ops += 2;
    stats.bytes += file_bytes;
  }
  for (uint32_t i = 0; i < files; ++i) {
    const std::string path = "/small/f" + std::to_string(i);
    auto r = fs.Read(path, 0, std::span<std::byte>(buf));
    ATOMFS_CHECK(r.ok() && *r == file_bytes);
    ++stats.ops;
    stats.bytes += *r;
  }
  for (uint32_t i = 0; i < files; ++i) {
    ATOMFS_CHECK(fs.Unlink("/small/f" + std::to_string(i)).ok());
    ++stats.ops;
  }
  ATOMFS_CHECK(fs.Rmdir("/small").ok());
  ++stats.ops;
  return stats;
}

}  // namespace atomfs
