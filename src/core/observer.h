// Observation interface between the concrete file systems and the CRL-H
// runtime (src/crlh).
//
// The paper introduces ghost state whose updates are grouped with concrete
// program steps into atomic blocks. We realize that by having AtomFS emit an
// event at each ghost-relevant step *while still holding the locks that make
// the step atomic*; the CRL-H monitor serializes event handling with one
// ghost mutex, so each (concrete step, ghost update) pair is atomic with
// respect to every other ghost-relevant step. Observers must not call back
// into the file system.

#ifndef ATOMFS_SRC_CORE_OBSERVER_H_
#define ATOMFS_SRC_CORE_OBSERVER_H_

#include "src/afs/op.h"
#include "src/util/tid.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Which ghost LockPath a lock acquisition extends. A rename holds a pair of
// LockPaths (SrcPath, DestPath), per the paper's §5.2; every other operation
// has a single LockPath.
enum class LockPathRole : uint8_t {
  kSingle,        // the only LockPath of a non-rename operation
  kRenameCommon,  // shared prefix up to the last common inode (extends both)
  kRenameSrc,     // source-branch lock (extends SrcPath)
  kRenameDst,     // destination-branch lock (extends DestPath)
  kOptTarget,     // target locked by an optimistic (RCU) walk, pre-validation
};

// Outcome of one optimistic-walk validation attempt (docs/CONCURRENCY.md §5).
// Exactly one OnOptWalkValidate fires per OnOptWalkStart, so per thread
// attempts == passes + fails + skips.
enum class OptValidation : uint8_t {
  kPass,     // every recorded (node, version) pair still current: read is live
  kFail,     // a component changed mid-walk (or the walk aborted): retry/fall back
  kSkipped,  // validation bypassed (unsafe_skip_opt_validation test hook)
};

class FsObserver {
 public:
  virtual ~FsObserver() = default;

  // An operation was invoked with the given arguments.
  virtual void OnOpBegin(Tid tid, const OpCall& call) {
    (void)tid;
    (void)call;
  }

  // The operation returned with `result`.
  virtual void OnOpEnd(Tid tid, const OpResult& result) {
    (void)tid;
    (void)result;
  }

  // The calling thread just acquired / released the lock of inode `ino`.
  virtual void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) {
    (void)tid;
    (void)ino;
    (void)role;
  }
  virtual void OnLockReleased(Tid tid, Inum ino) {
    (void)tid;
    (void)ino;
  }

  // The operation reached its linearization point: its concrete effect (if
  // any) has just been applied and is still protected by the held locks.
  // `created_ino` carries the concrete inode number allocated by a
  // successful mkdir/mknod, or kInvalidInum. For a rename this is where the
  // CRL-H helper (`linothers`) runs.
  virtual void OnLp(Tid tid, Inum created_ino) {
    (void)tid;
    (void)created_ino;
  }

  // Optimistic (RCU-style) walk lifecycle. One OnOptWalkStart per traversal
  // attempt, answered by exactly one OnOptWalkValidate with the attempt's
  // outcome (`depth` = number of (node, version) pairs in the validated
  // chain). OnOptWalkFallback fires once when the op abandons the optimistic
  // path for the lock-coupled walk. Emitted while holding only the target
  // inode's lock (validate) or no lock at all (start/fallback).
  virtual void OnOptWalkStart(Tid tid) { (void)tid; }
  virtual void OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) {
    (void)tid;
    (void)outcome;
    (void)depth;
  }
  virtual void OnOptWalkFallback(Tid tid) { (void)tid; }
};

// Fans an event stream out to several observers (e.g. the CRL-H monitor plus
// a test gate that pauses threads at chosen points).
class TeeObserver : public FsObserver {
 public:
  TeeObserver(FsObserver* first, FsObserver* second) : first_(first), second_(second) {}

  void OnOpBegin(Tid tid, const OpCall& call) override {
    first_->OnOpBegin(tid, call);
    second_->OnOpBegin(tid, call);
  }
  void OnOpEnd(Tid tid, const OpResult& result) override {
    first_->OnOpEnd(tid, result);
    second_->OnOpEnd(tid, result);
  }
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override {
    first_->OnLockAcquired(tid, ino, role);
    second_->OnLockAcquired(tid, ino, role);
  }
  void OnLockReleased(Tid tid, Inum ino) override {
    first_->OnLockReleased(tid, ino);
    second_->OnLockReleased(tid, ino);
  }
  void OnLp(Tid tid, Inum created_ino) override {
    first_->OnLp(tid, created_ino);
    second_->OnLp(tid, created_ino);
  }
  void OnOptWalkStart(Tid tid) override {
    first_->OnOptWalkStart(tid);
    second_->OnOptWalkStart(tid);
  }
  void OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) override {
    first_->OnOptWalkValidate(tid, outcome, depth);
    second_->OnOptWalkValidate(tid, outcome, depth);
  }
  void OnOptWalkFallback(Tid tid) override {
    first_->OnOptWalkFallback(tid);
    second_->OnOptWalkFallback(tid);
  }

 private:
  FsObserver* first_;
  FsObserver* second_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_OBSERVER_H_
