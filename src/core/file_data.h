// FileData: file contents as 4 KiB blocks addressed through an index array,
// following the paper's prototype ("a fixed-size array of indexes for file
// data storage"). The index array grows on demand but is capped at
// kMaxFileBlocks, which bounds a file at kMaxFileSize; writes beyond that
// fail with ENOSPC, in lockstep with the abstract specification.
//
// FileData is always accessed under the owning inode's lock.

#ifndef ATOMFS_SRC_CORE_FILE_DATA_H_
#define ATOMFS_SRC_CORE_FILE_DATA_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/limits.h"

namespace atomfs {

class FileData {
 public:
  FileData() = default;

  FileData(const FileData&) = delete;
  FileData& operator=(const FileData&) = delete;

  uint64_t size() const { return size_; }

  // Number of blocks the read/write will touch; used for cost accounting.
  static uint64_t BlocksSpanned(uint64_t offset, uint64_t len);

  // Reads up to out.size() bytes at `offset`; returns bytes read (short at
  // EOF, 0 past EOF).
  size_t Read(uint64_t offset, std::span<std::byte> out) const;

  // Writes, zero-filling any hole below `offset`. kNoSpace if the write
  // would exceed kMaxFileSize.
  Result<size_t> Write(uint64_t offset, std::span<const std::byte> data);

  // Grows (zero-filled) or shrinks to `size`.
  Status Truncate(uint64_t size);

  // Copies the whole contents out (snapshots for checkers).
  std::vector<std::byte> ToBytes() const;

 private:
  using Block = std::array<std::byte, kBlockSize>;

  // Ensures blocks_[i] exists for every block overlapping [0, size).
  void EnsureBlocks(uint64_t size);

  std::vector<std::unique_ptr<Block>> blocks_;
  uint64_t size_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_FILE_DATA_H_
