// AtomFS: the paper's fine-grained concurrent in-memory file system.
//
// Concurrency control is *lock coupling* (hand-over-hand per-inode locking)
// over the directory tree: a traversal always acquires the next inode's lock
// before releasing the current one. This satisfies the paper's
// non-bypassable criterion (§5.1): no operation can overtake another on the
// same path, which is what makes every interface linearizable even though
// rename gives other operations *external* linearization points.
//
// Linearization points (LPs):
//   * mkdir/mknod ("ins")  - after the directory insert, before unlock.
//   * rmdir/unlink ("del") - after the directory remove, before unlock.
//   * stat/readdir/read/write/truncate - while the target inode is locked.
//   * rename               - after re-linking, before unlock; this is where
//     the CRL-H helper (linothers) logically linearizes every operation
//     whose traversed path the rename broke, before the rename itself.
//   * failing operations   - at the step where the failure is decided (e.g.
//     the lookup miss), while the deciding lock is held.
//
// Every LP and every lock transition is reported through FsObserver so the
// CRL-H runtime can maintain ghost state and check linearizability; with a
// null observer AtomFS runs unmonitored at full speed.
//
// rename traverses to the last common inode of the two parent paths with
// lock coupling and releases that inode's lock only after both parent
// directories are locked (paper §5.2), which keeps LockPaths acyclic and
// rename deadlock-free.

#ifndef ATOMFS_SRC_CORE_ATOM_FS_H_
#define ATOMFS_SRC_CORE_ATOM_FS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/afs/spec_fs.h"
#include "src/core/cost_model.h"
#include "src/core/inode.h"
#include "src/core/observer.h"
#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

class AtomFs : public FileSystem {
 public:
  struct Options {
    Executor* executor = &Executor::Real();
    FsObserver* observer = nullptr;
    uint32_t dir_buckets = 64;
    CostModel costs;

    // VALIDATION ONLY: release the parent's lock before acquiring the
    // child's during traversal. This deliberately breaks the non-bypassable
    // criterion so tests can demonstrate that the CRL-H checkers flag the
    // resulting non-linearizable executions (paper Figure 8). Deleted inodes
    // are parked until destruction in this mode to keep the violation
    // memory-safe.
    bool unsafe_release_before_lock = false;

    // Skip all per-inode locking and lock/LP observer events. Used by
    // BigLockFs, which wraps the whole structure in one global lock; the
    // inner tree then needs no fine-grained synchronization.
    bool disable_inode_locks = false;

    // Optimistic (RCU-style) path walk for read-only ops (stat/readdir/
    // read): traverse without locking, lock only the target, then validate
    // the recorded per-component version chain before trusting the data
    // (docs/CONCURRENCY.md §4-5). Falls back to the lock-coupled walk on any
    // validation failure or after `rcu_walk_max_retries` attempts. Deleted
    // inodes are parked until destruction in this mode so a reader that
    // locks a just-unlinked target stays memory-safe (it then fails
    // validation). Incompatible with disable_inode_locks.
    bool enable_rcu_walk = false;
    uint32_t rcu_walk_max_retries = 2;

    // VALIDATION ONLY: skip the version-chain validation at the end of an
    // optimistic walk and report the (possibly stale) read as-is, emitting
    // OptValidation::kSkipped. Exists so tests can demonstrate that the
    // CRL-H monitor catches the resulting stale reads as refinement
    // divergences — the optimistic analogue of unsafe_release_before_lock.
    bool unsafe_skip_opt_validation = false;

    // Fault injection: when set and returning true, the next inode
    // allocation fails and the creating operation returns ENOSPC after
    // cleanly releasing its locks. Exercises failure paths that normal
    // operation cannot reach. (The abstract specification has no allocation
    // failures, so injection runs are validated structurally, not against
    // the CRL-H refinement.)
    std::function<bool()> inject_alloc_failure;
  };

  AtomFs();
  explicit AtomFs(Options options);
  ~AtomFs() override;

  AtomFs(const AtomFs&) = delete;
  AtomFs& operator=(const AtomFs&) = delete;

  // FileSystem interface (see src/vfs/filesystem.h for semantics).
  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // kFsCapRcuWalk when the optimistic read path is enabled; sharding and
  // transactions are layered above AtomFs, so their bits are OR'd in by the
  // wrapping ShardedFs / server.
  uint32_t Capabilities() const override {
    return opts_.enable_rcu_walk ? kFsCapRcuWalk : 0;
  }

  // Deep snapshot of the whole tree as a SpecFs (concrete inums preserved).
  // Only valid while no operation is in flight; used by the CRL-H
  // abstract-concrete relation checker and by tests.
  SpecFs SnapshotSpec() const;

  // Live inodes (root included). Quiescent-only, like SnapshotSpec.
  uint64_t InodeCount() const { return inode_count_.load(std::memory_order_relaxed); }

 private:
  // mkdir/mknod share one body; rmdir/unlink likewise (the paper's ins/del).
  Status Insert(const Path& path, FileType type);
  Status Delete(const Path& path, FileType type);

  // Resolves `path` to its target inode with lock coupling and returns it
  // locked. Shared by stat/readdir/read/write/truncate.
  Result<Inode*> ResolveTargetLocked(const Path& path);

  // Walks `parts[0..count)` from the root with lock coupling; returns the
  // final inode locked. On ENOENT/ENOTDIR the failure LP is emitted and all
  // locks are released before returning.
  Result<Inode*> TraverseLocked(const std::vector<std::string>& parts, size_t count,
                                LockPathRole role);

  // Directory lookup with chain-length-proportional cost accounting.
  Inode* LookupCharged(Inode* dir, const std::string& name);

  // --- optimistic (RCU) walk, docs/CONCURRENCY.md §4-5 ---

  // Attempts up to rcu_walk_max_retries optimistic resolutions of `path`.
  // On success returns the target inode LOCKED (role kOptTarget) with its
  // version chain validated (or validation skipped under the unsafe hook);
  // returns nullptr after emitting OnOptWalkFallback when every attempt
  // failed — the caller then runs the ordinary lock-coupled walk. Never
  // reports errors: a lock-free miss may be transient, so only the locked
  // walk is allowed to decide ENOENT/ENOTDIR.
  Inode* TryOptimisticResolve(const Path& path);
  // One attempt: lock-free traverse recording (node, version) pairs, lock
  // the target, validate. Emits exactly one OnOptWalkValidate.
  Inode* OptimisticAttempt(const Path& path);

  // Seqlock write protocol (docs/CONCURRENCY.md §3): callers hold `node`'s
  // lock. Open flips the version odd before the first chain mutation; Close
  // release-publishes the new even value after the last one.
  static void VersionBumpOpen(Inode* node);
  static void VersionBumpClose(Inode* node);
  // Single +2 bump for a node whose *identity* changed (moved, displaced,
  // swapped, removed) rather than its directory contents.
  static void VersionTick(Inode* node);

  void LockInode(Inode* node, LockPathRole role);
  void UnlockInode(Inode* node);
  void UnlockAll(const std::vector<Inode*>& nodes);

  std::unique_ptr<Inode> NewInode(FileType type);
  // Destroys a detached subtree iteratively (or parks it in unsafe mode).
  void DisposeInode(std::unique_ptr<Inode> node);

  void ObserveBegin(const OpCall& call);
  void ObserveEnd(const OpResult& result);
  // Emits the LP event. `created` carries the concrete inum allocated by a
  // successful ins.
  void ObserveLp(Inum created = kInvalidInum);

  // Convenience: emits LP + end for an early-decided failing operation.
  Status FailOp(Errc code);

  Options opts_;
  std::unique_ptr<Inode> root_;
  std::atomic<Inum> next_inum_{kRootInum + 1};
  std::atomic<uint64_t> inode_count_{1};

  // unsafe_release_before_lock only: deleted inodes parked until shutdown.
  std::mutex graveyard_mu_;
  std::vector<std::unique_ptr<Inode>> graveyard_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_ATOM_FS_H_
