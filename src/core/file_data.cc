#include "src/core/file_data.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace atomfs {

uint64_t FileData::BlocksSpanned(uint64_t offset, uint64_t len) {
  if (len == 0) {
    return 0;
  }
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = (offset + len - 1) / kBlockSize;
  return last - first + 1;
}

void FileData::EnsureBlocks(uint64_t size) {
  const uint64_t need = (size + kBlockSize - 1) / kBlockSize;
  ATOMFS_CHECK(need <= kMaxFileBlocks);
  while (blocks_.size() < need) {
    auto block = std::make_unique<Block>();
    block->fill(std::byte{0});
    blocks_.push_back(std::move(block));
  }
}

size_t FileData::Read(uint64_t offset, std::span<std::byte> out) const {
  if (offset >= size_) {
    return 0;
  }
  const size_t n = static_cast<size_t>(std::min<uint64_t>(out.size(), size_ - offset));
  size_t copied = 0;
  while (copied < n) {
    const uint64_t pos = offset + copied;
    const size_t block = static_cast<size_t>(pos / kBlockSize);
    const size_t in_block = static_cast<size_t>(pos % kBlockSize);
    const size_t chunk = std::min(n - copied, kBlockSize - in_block);
    std::memcpy(out.data() + copied, blocks_[block]->data() + in_block, chunk);
    copied += chunk;
  }
  return n;
}

Result<size_t> FileData::Write(uint64_t offset, std::span<const std::byte> data) {
  const uint64_t end = offset + data.size();
  if (end > kMaxFileSize) {
    return Errc::kNoSpace;
  }
  if (end > size_) {
    EnsureBlocks(end);
    size_ = end;
  }
  size_t copied = 0;
  while (copied < data.size()) {
    const uint64_t pos = offset + copied;
    const size_t block = static_cast<size_t>(pos / kBlockSize);
    const size_t in_block = static_cast<size_t>(pos % kBlockSize);
    const size_t chunk = std::min(data.size() - copied, kBlockSize - in_block);
    std::memcpy(blocks_[block]->data() + in_block, data.data() + copied, chunk);
    copied += chunk;
  }
  return data.size();
}

Status FileData::Truncate(uint64_t size) {
  if (size > kMaxFileSize) {
    return Status(Errc::kNoSpace);
  }
  if (size < size_) {
    const uint64_t keep = (size + kBlockSize - 1) / kBlockSize;
    blocks_.resize(keep);
    // Zero the tail of the last kept block so a later grow re-exposes zeros.
    if (size % kBlockSize != 0 && !blocks_.empty()) {
      auto& last = *blocks_.back();
      std::fill(last.begin() + static_cast<ptrdiff_t>(size % kBlockSize), last.end(),
                std::byte{0});
    }
  } else if (size > size_) {
    EnsureBlocks(size);
  }
  size_ = size;
  return Status::Ok();
}

std::vector<std::byte> FileData::ToBytes() const {
  std::vector<std::byte> out(size_);
  if (size_ != 0) {
    Read(0, std::span<std::byte>(out));
  }
  return out;
}

}  // namespace atomfs
