// The concrete in-memory inode. Each inode carries its own lock (the paper's
// per-inode, fine-grained locking); `ino` and `type` are immutable after
// creation and may be read without the lock, everything else requires it.

#ifndef ATOMFS_SRC_CORE_INODE_H_
#define ATOMFS_SRC_CORE_INODE_H_

#include <memory>

#include "src/core/dir_table.h"
#include "src/core/file_data.h"
#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

struct Inode {
  Inode(Inum ino_arg, FileType type_arg, std::unique_ptr<Lockable> lock_arg,
        uint32_t dir_buckets)
      : ino(ino_arg), type(type_arg), lock(std::move(lock_arg)), dir(dir_buckets) {}

  const Inum ino;
  const FileType type;
  const std::unique_ptr<Lockable> lock;

  DirTable dir;    // valid when type == kDir
  FileData data;   // valid when type == kFile
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_INODE_H_
