// The concrete in-memory inode. Each inode carries its own lock (the paper's
// per-inode, fine-grained locking); `ino` and `type` are immutable after
// creation and may be read without the lock, everything else requires it —
// except `version`, the seqlock-style counter the optimistic walk reads
// lock-free (docs/CONCURRENCY.md §3).

#ifndef ATOMFS_SRC_CORE_INODE_H_
#define ATOMFS_SRC_CORE_INODE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/core/dir_table.h"
#include "src/core/file_data.h"
#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

struct Inode {
  Inode(Inum ino_arg, FileType type_arg, std::unique_ptr<Lockable> lock_arg,
        uint32_t dir_buckets, bool rcu_dir = false)
      : ino(ino_arg), type(type_arg), lock(std::move(lock_arg)),
        dir(dir_buckets, rcu_dir) {}

  const Inum ino;
  const FileType type;
  const std::unique_ptr<Lockable> lock;

  // Seqlock version (docs/CONCURRENCY.md §3). Written ONLY while this
  // inode's lock is held: odd while a namespace mutation that affects this
  // node is in flight, even when quiescent. Optimistic readers acquire-load
  // it before and after traversing through the node; an odd value or a
  // changed value invalidates the attempt. Structural no-op for file data
  // writes (those are covered by the target lock the reader also takes).
  std::atomic<uint64_t> version{0};

  DirTable dir;    // valid when type == kDir
  FileData data;   // valid when type == kFile
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_INODE_H_
