#include "src/core/atom_fs.h"

#include <algorithm>
#include <deque>

#include "src/util/check.h"

namespace atomfs {
namespace {

// Longest common prefix length of two component lists.
size_t CommonPrefixLen(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) {
    ++i;
  }
  return i;
}

}  // namespace

AtomFs::AtomFs() : AtomFs(Options{}) {}

AtomFs::AtomFs(Options options) : opts_(std::move(options)) {
  ATOMFS_CHECK(opts_.executor != nullptr);
  // The optimistic walk validates under the *target's* lock; with inode
  // locks compiled out (BigLockFs) there is nothing to validate under.
  ATOMFS_CHECK(!(opts_.enable_rcu_walk && opts_.disable_inode_locks));
  root_ = std::make_unique<Inode>(kRootInum, FileType::kDir, opts_.executor->CreateLock(),
                                  opts_.dir_buckets, opts_.enable_rcu_walk);
}

AtomFs::~AtomFs() {
  // Iterative teardown: a deep directory chain must not recurse through
  // nested unique_ptr destructors.
  std::deque<std::unique_ptr<Inode>> work;
  work.push_back(std::move(root_));
  {
    std::lock_guard<std::mutex> lk(graveyard_mu_);
    for (auto& node : graveyard_) {
      work.push_back(std::move(node));
    }
    graveyard_.clear();
  }
  while (!work.empty()) {
    std::unique_ptr<Inode> node = std::move(work.front());
    work.pop_front();
    if (node != nullptr && node->type == FileType::kDir) {
      for (auto& child : node->dir.TakeAll()) {
        work.push_back(std::move(child));
      }
    }
  }
}

// --- Observation plumbing ---------------------------------------------------

void AtomFs::ObserveBegin(const OpCall& call) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  if (opts_.observer != nullptr) {
    opts_.observer->OnOpBegin(CurrentTid(), call);
  }
}

void AtomFs::ObserveEnd(const OpResult& result) {
  if (opts_.observer != nullptr) {
    opts_.observer->OnOpEnd(CurrentTid(), result);
  }
}

void AtomFs::ObserveLp(Inum created) {
  if (opts_.observer != nullptr) {
    opts_.observer->OnLp(CurrentTid(), created);
  }
}

Status AtomFs::FailOp(Errc code) {
  ObserveLp();
  OpResult r;
  r.status = Status(code);
  ObserveEnd(r);
  return Status(code);
}

void AtomFs::LockInode(Inode* node, LockPathRole role) {
  if (opts_.disable_inode_locks) {
    return;
  }
  node->lock->Lock();
  if (opts_.observer != nullptr) {
    opts_.observer->OnLockAcquired(CurrentTid(), node->ino, role);
  }
}

void AtomFs::UnlockInode(Inode* node) {
  if (opts_.disable_inode_locks) {
    return;
  }
  // Release first, then report: a ghost LockPath is append-only (releases do
  // not shrink it), so the ghost state needs no atomicity with the unlock —
  // and observers that park threads at release events (GateObserver) then
  // park them *after* the lock is actually free, which is what the paper's
  // interleavings require.
  const Inum ino = node->ino;
  node->lock->Unlock();
  if (opts_.observer != nullptr) {
    opts_.observer->OnLockReleased(CurrentTid(), ino);
  }
}

void AtomFs::UnlockAll(const std::vector<Inode*>& nodes) {
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    UnlockInode(*it);
  }
}

Inode* AtomFs::LookupCharged(Inode* dir, const std::string& name) {
  size_t probes = 0;
  Inode* child = dir->dir.Find(name, &probes);
  opts_.executor->Work(opts_.costs.lookup_ns + opts_.costs.lookup_probe_ns * probes);
  return child;
}

// --- Inode lifecycle --------------------------------------------------------

std::unique_ptr<Inode> AtomFs::NewInode(FileType type) {
  opts_.executor->Work(opts_.costs.inode_alloc_ns);
  inode_count_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Inode>(next_inum_.fetch_add(1, std::memory_order_relaxed), type,
                                 opts_.executor->CreateLock(), opts_.dir_buckets,
                                 opts_.enable_rcu_walk);
}

void AtomFs::DisposeInode(std::unique_ptr<Inode> node) {
  opts_.executor->Work(opts_.costs.inode_free_ns);
  inode_count_.fetch_sub(1, std::memory_order_relaxed);
  if (opts_.unsafe_release_before_lock || opts_.enable_rcu_walk) {
    // A bypassing traversal may still hold a raw pointer; park the inode so
    // the violation (unsafe mode) or the about-to-fail-validation optimistic
    // reader (rcu mode) stays memory-safe. Deferred reclamation is the RCU
    // grace period, degenerately stretched to the filesystem's lifetime.
    std::lock_guard<std::mutex> lk(graveyard_mu_);
    graveyard_.push_back(std::move(node));
    return;
  }
  // rmdir only removes empty directories and unlink only files, so `node`
  // has no children and plain destruction cannot recurse.
}

// --- Traversal --------------------------------------------------------------

Result<Inode*> AtomFs::TraverseLocked(const std::vector<std::string>& parts, size_t count,
                                      LockPathRole role) {
  Inode* cur = root_.get();
  LockInode(cur, role);
  for (size_t i = 0; i < count; ++i) {
    if (cur->type != FileType::kDir) {
      ObserveLp();
      UnlockInode(cur);
      return Errc::kNotDir;
    }
    Inode* child = LookupCharged(cur, parts[i]);
    if (child == nullptr) {
      ObserveLp();
      UnlockInode(cur);
      return Errc::kNoEnt;
    }
    if (opts_.unsafe_release_before_lock) {
      UnlockInode(cur);
      LockInode(child, role);
    } else {
      // Lock coupling: child first, then release the parent.
      LockInode(child, role);
      UnlockInode(cur);
    }
    cur = child;
  }
  return cur;
}

Result<Inode*> AtomFs::ResolveTargetLocked(const Path& path) {
  if (path.IsRoot()) {
    LockInode(root_.get(), LockPathRole::kSingle);
    return root_.get();
  }
  auto parent = TraverseLocked(path.parts, path.parts.size() - 1, LockPathRole::kSingle);
  if (!parent.ok()) {
    return parent;
  }
  Inode* dir = *parent;
  if (dir->type != FileType::kDir) {
    ObserveLp();
    UnlockInode(dir);
    return Errc::kNotDir;
  }
  Inode* child = LookupCharged(dir, path.Base());
  if (child == nullptr) {
    ObserveLp();
    UnlockInode(dir);
    return Errc::kNoEnt;
  }
  if (opts_.unsafe_release_before_lock) {
    UnlockInode(dir);
    LockInode(child, LockPathRole::kSingle);
  } else {
    LockInode(child, LockPathRole::kSingle);
    UnlockInode(dir);
  }
  return child;
}

// --- optimistic (RCU) walk ---------------------------------------------------
//
// The normative protocol lives in docs/CONCURRENCY.md §3-5. Summary: a
// namespace writer flips every affected node's seqlock version odd (relaxed
// store, sequenced before its release-published chain mutations) while
// holding that node's lock, mutates, then release-stores the new even value.
// The optimistic reader records (node, version) pairs on the way down with
// acquire loads, locks ONLY the target, and revalidates the whole chain.
// Because versions are written exclusively under the owning node's lock, any
// mutation that could make the resolution stale either (a) completed before
// the reader locked the target — then the lock acquisition's happens-before
// edge makes the bumped version visible and validation fails — or (b) has
// not yet locked the nodes it will mutate, in which case the read is still
// live and linearizes at the validation instant.

void AtomFs::VersionBumpOpen(Inode* node) {
  // Relaxed is enough: this store is sequenced before the release stores
  // that publish the chain mutation, so a reader that acquires a mutated
  // chain pointer also observes the odd version.
  node->version.store(node->version.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
}

void AtomFs::VersionBumpClose(Inode* node) {
  node->version.store(node->version.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
}

void AtomFs::VersionTick(Inode* node) {
  node->version.fetch_add(2, std::memory_order_release);
}

Inode* AtomFs::OptimisticAttempt(const Path& path) {
  if (opts_.observer != nullptr) {
    opts_.observer->OnOptWalkStart(CurrentTid());
  }
  struct Rec {
    Inode* node;
    uint64_t version;
  };
  std::vector<Rec> chain;
  chain.reserve(path.parts.size() + 1);
  auto fail = [&]() -> Inode* {
    if (opts_.observer != nullptr) {
      opts_.observer->OnOptWalkValidate(CurrentTid(), OptValidation::kFail,
                                        static_cast<uint32_t>(chain.size()));
    }
    return nullptr;
  };
  Inode* cur = root_.get();
  for (const std::string& part : path.parts) {
    const uint64_t v = cur->version.load(std::memory_order_acquire);
    if ((v & 1) != 0) {
      return fail();  // mutation in flight on this node
    }
    chain.push_back({cur, v});
    if (cur->type != FileType::kDir) {
      // Only the locked walk may decide ENOTDIR/ENOENT: what we saw may be a
      // transient state of a concurrent mutation.
      return fail();
    }
    Inode* child = cur->dir.FindOptimistic(part);
    opts_.executor->Work(opts_.costs.lookup_ns);
    if (child == nullptr) {
      return fail();
    }
    cur = child;
  }
  const uint64_t tv = cur->version.load(std::memory_order_acquire);
  if ((tv & 1) != 0) {
    return fail();
  }
  chain.push_back({cur, tv});
  // The only lock of the whole walk: the target's. Taken before validation
  // so the target's version is stable while we check (versions are written
  // only under the owning node's lock) and the subsequent data access is as
  // race-free as in the lock-coupled walk.
  LockInode(cur, LockPathRole::kOptTarget);
  if (opts_.unsafe_skip_opt_validation) {
    if (opts_.observer != nullptr) {
      opts_.observer->OnOptWalkValidate(CurrentTid(), OptValidation::kSkipped,
                                        static_cast<uint32_t>(chain.size()));
    }
    return cur;
  }
  for (const Rec& r : chain) {
    if (r.node->version.load(std::memory_order_acquire) != r.version) {
      Inode* const locked = cur;
      Inode* const result = fail();
      UnlockInode(locked);
      return result;
    }
  }
  if (opts_.observer != nullptr) {
    opts_.observer->OnOptWalkValidate(CurrentTid(), OptValidation::kPass,
                                      static_cast<uint32_t>(chain.size()));
  }
  return cur;
}

Inode* AtomFs::TryOptimisticResolve(const Path& path) {
  // Initial attempt plus rcu_walk_max_retries retries.
  for (uint32_t attempt = 0; attempt < 1 + opts_.rcu_walk_max_retries; ++attempt) {
    if (Inode* node = OptimisticAttempt(path); node != nullptr) {
      return node;
    }
  }
  if (opts_.observer != nullptr) {
    opts_.observer->OnOptWalkFallback(CurrentTid());
  }
  return nullptr;
}

// --- ins / del --------------------------------------------------------------

Status AtomFs::Mkdir(const Path& path) { return Insert(path, FileType::kDir); }
Status AtomFs::Mknod(const Path& path) { return Insert(path, FileType::kFile); }
Status AtomFs::Rmdir(const Path& path) { return Delete(path, FileType::kDir); }
Status AtomFs::Unlink(const Path& path) { return Delete(path, FileType::kFile); }

Status AtomFs::Insert(const Path& path, FileType type) {
  ObserveBegin(type == FileType::kDir ? OpCall::MkdirOf(path) : OpCall::MknodOf(path));
  auto finish = [this](Status st) {
    OpResult r;
    r.status = st;
    ObserveEnd(r);
    return st;
  };
  if (path.IsRoot()) {
    ObserveLp();
    return finish(Status(Errc::kExist));
  }
  auto parent = TraverseLocked(path.parts, path.parts.size() - 1, LockPathRole::kSingle);
  if (!parent.ok()) {
    return finish(parent.status());  // failure LP already emitted
  }
  Inode* dir = *parent;
  if (dir->type != FileType::kDir) {
    ObserveLp();
    UnlockInode(dir);
    return finish(Status(Errc::kNotDir));
  }
  if (LookupCharged(dir, path.Base()) != nullptr) {
    ObserveLp();
    UnlockInode(dir);
    return finish(Status(Errc::kExist));
  }
  if (opts_.inject_alloc_failure && opts_.inject_alloc_failure()) {
    ObserveLp();
    UnlockInode(dir);
    return finish(Status(Errc::kNoSpace));
  }
  std::unique_ptr<Inode> node = NewInode(type);
  const Inum created = node->ino;
  opts_.executor->Work(opts_.costs.dir_insert_ns);
  VersionBumpOpen(dir);
  ATOMFS_CHECK(dir->dir.Insert(path.Base(), std::move(node)));
  VersionBumpClose(dir);
  ObserveLp(created);
  UnlockInode(dir);
  return finish(Status::Ok());
}

Status AtomFs::Delete(const Path& path, FileType type) {
  ObserveBegin(type == FileType::kDir ? OpCall::RmdirOf(path) : OpCall::UnlinkOf(path));
  auto finish = [this](Status st) {
    OpResult r;
    r.status = st;
    ObserveEnd(r);
    return st;
  };
  if (path.IsRoot()) {
    ObserveLp();
    return finish(Status(type == FileType::kDir ? Errc::kBusy : Errc::kIsDir));
  }
  auto parent = TraverseLocked(path.parts, path.parts.size() - 1, LockPathRole::kSingle);
  if (!parent.ok()) {
    return finish(parent.status());
  }
  Inode* dir = *parent;
  if (dir->type != FileType::kDir) {
    ObserveLp();
    UnlockInode(dir);
    return finish(Status(Errc::kNotDir));
  }
  Inode* child = LookupCharged(dir, path.Base());
  if (child == nullptr) {
    ObserveLp();
    UnlockInode(dir);
    return finish(Status(Errc::kNoEnt));
  }
  LockInode(child, LockPathRole::kSingle);
  Errc err = Errc::kOk;
  if (type == FileType::kDir) {
    if (child->type != FileType::kDir) {
      err = Errc::kNotDir;
    } else if (!child->dir.empty()) {
      err = Errc::kNotEmpty;
    }
  } else {
    if (child->type == FileType::kDir) {
      err = Errc::kIsDir;
    }
  }
  if (err != Errc::kOk) {
    ObserveLp();
    UnlockInode(child);
    UnlockInode(dir);
    return finish(Status(err));
  }
  opts_.executor->Work(opts_.costs.dir_remove_ns);
  VersionBumpOpen(dir);
  std::unique_ptr<Inode> owned = dir->dir.Remove(path.Base());
  VersionBumpClose(dir);
  ATOMFS_CHECK(owned != nullptr);
  // Belt and braces: the removed node's own version also moves, so a reader
  // that somehow still reaches it (through a retired chain shell) cannot
  // validate against a pre-removal recording.
  VersionTick(child);
  ObserveLp();
  UnlockInode(child);
  UnlockInode(dir);
  DisposeInode(std::move(owned));
  return finish(Status::Ok());
}

// --- rename -----------------------------------------------------------------

Status AtomFs::Rename(const Path& src, const Path& dst) {
  ObserveBegin(OpCall::RenameOf(src, dst));
  auto finish = [this](Status st) {
    OpResult r;
    r.status = st;
    ObserveEnd(r);
    return st;
  };

  // Lexical prechecks, in the same order as the abstract specification.
  if (src.IsRoot() || dst.IsRoot()) {
    ObserveLp();
    return finish(Status(Errc::kBusy));
  }
  if (src.IsPrefixOf(dst) && src != dst) {
    ObserveLp();
    return finish(Status(Errc::kInval));
  }
  // dst strictly above src: the destination inode, if everything resolves,
  // is an ancestor directory of the source parent. We must not lock an
  // ancestor after its descendant (lock order is strictly top-down), so this
  // case is decided without ever locking the destination inode: it is
  // necessarily a non-empty directory.
  const bool dst_above_src = dst.IsPrefixOf(src) && dst != src;

  const Path sparent = src.Dir();
  const Path dparent = dst.Dir();
  const size_t common = CommonPrefixLen(sparent.parts, dparent.parts);

  std::vector<Inode*> held;  // in acquisition order
  auto fail_all = [&](Errc code) {
    ObserveLp();
    UnlockAll(held);
    return finish(Status(code));
  };

  // Phase 1: lock-coupled traversal of the common prefix of the two parent
  // paths, charged to both ghost LockPaths.
  auto lca = TraverseLocked(sparent.parts, common, LockPathRole::kRenameCommon);
  if (!lca.ok()) {
    return finish(lca.status());
  }
  Inode* base = *lca;
  held.push_back(base);

  // Phase 2/3: descend each branch while keeping the last common inode
  // locked; its lock is released only after both parents are held (§5.2).
  auto descend = [&](const Path& parent_path, LockPathRole role) -> Result<Inode*> {
    Inode* cur = base;
    for (size_t i = common; i < parent_path.parts.size(); ++i) {
      if (cur->type != FileType::kDir) {
        return Errc::kNotDir;
      }
      Inode* child = LookupCharged(cur, parent_path.parts[i]);
      if (child == nullptr) {
        return Errc::kNoEnt;
      }
      LockInode(child, role);
      if (cur != base) {
        UnlockInode(cur);
        std::erase(held, cur);
      }
      held.push_back(child);
      cur = child;
    }
    return cur;
  };

  auto sres = descend(sparent, LockPathRole::kRenameSrc);
  if (!sres.ok()) {
    return fail_all(sres.status().code());
  }
  Inode* sdir = *sres;
  // Source-parent checks come before any destination resolution, matching
  // the specification's error precedence.
  if (sdir->type != FileType::kDir) {
    return fail_all(Errc::kNotDir);
  }
  auto dres = descend(dparent, LockPathRole::kRenameDst);
  if (!dres.ok()) {
    return fail_all(dres.status().code());
  }
  Inode* ddir = *dres;
  if (ddir->type != FileType::kDir) {
    return fail_all(Errc::kNotDir);
  }

  // Release the last common inode once both parents are locked.
  if (base != sdir && base != ddir) {
    UnlockInode(base);
    std::erase(held, base);
  }

  // Lookups and semantic checks, mirroring SpecFs::Rename's order.
  Inode* snode = LookupCharged(sdir, src.Base());
  if (snode == nullptr) {
    return fail_all(Errc::kNoEnt);
  }
  if (src == dst) {
    ObserveLp();
    UnlockAll(held);
    return finish(Status::Ok());
  }
  if (dst_above_src) {
    // See above: destination resolves to a directory on src's own path.
    return fail_all(snode->type == FileType::kFile ? Errc::kIsDir : Errc::kNotEmpty);
  }
  Inode* dnode = LookupCharged(ddir, dst.Base());
  if (dnode != nullptr) {
    // `type` is immutable, so these checks need no lock.
    if (snode->type == FileType::kDir && dnode->type != FileType::kDir) {
      return fail_all(Errc::kNotDir);
    }
    if (snode->type != FileType::kDir && dnode->type == FileType::kDir) {
      return fail_all(Errc::kIsDir);
    }
    LockInode(dnode, LockPathRole::kRenameDst);
    held.push_back(dnode);
    if (dnode->type == FileType::kDir && !dnode->dir.empty()) {
      return fail_all(Errc::kNotEmpty);
    }
  }
  LockInode(snode, LockPathRole::kRenameSrc);
  held.push_back(snode);

  // Seqlock open on each distinct parent exactly once (two opens on the same
  // node would close back to an odd value).
  VersionBumpOpen(sdir);
  if (ddir != sdir) {
    VersionBumpOpen(ddir);
  }
  std::unique_ptr<Inode> displaced;
  if (dnode != nullptr) {
    opts_.executor->Work(opts_.costs.dir_remove_ns);
    displaced = ddir->dir.Remove(dst.Base());
    ATOMFS_CHECK(displaced != nullptr);
  }
  opts_.executor->Work(opts_.costs.dir_remove_ns);
  std::unique_ptr<Inode> moving = sdir->dir.Remove(src.Base());
  ATOMFS_CHECK(moving != nullptr);
  opts_.executor->Work(opts_.costs.dir_insert_ns);
  ATOMFS_CHECK(ddir->dir.Insert(dst.Base(), std::move(moving)));
  VersionTick(snode);  // the moved node's identity-path changed (lock held)
  if (dnode != nullptr) {
    VersionTick(dnode);  // the displaced node left the namespace (lock held)
  }
  if (ddir != sdir) {
    VersionBumpClose(ddir);
  }
  VersionBumpClose(sdir);

  // The rename LP: the CRL-H helper (linothers) runs inside this event, then
  // the rename's own abstract operation executes.
  ObserveLp();
  UnlockAll(held);
  if (displaced != nullptr) {
    DisposeInode(std::move(displaced));
  }
  return finish(Status::Ok());
}

Status AtomFs::Exchange(const Path& a, const Path& b) {
  ObserveBegin(OpCall::ExchangeOf(a, b));
  auto finish = [this](Status st) {
    OpResult r;
    r.status = st;
    ObserveEnd(r);
    return st;
  };

  // Lexical prechecks, in the same order as the abstract specification.
  if (a.IsRoot() || b.IsRoot()) {
    ObserveLp();
    return finish(Status(Errc::kBusy));
  }
  if ((a.IsPrefixOf(b) || b.IsPrefixOf(a)) && a != b) {
    ObserveLp();
    return finish(Status(Errc::kInval));
  }

  const Path aparent = a.Dir();
  const Path bparent = b.Dir();
  const size_t common = CommonPrefixLen(aparent.parts, bparent.parts);

  std::vector<Inode*> held;
  auto fail_all = [&](Errc code) {
    ObserveLp();
    UnlockAll(held);
    return finish(Status(code));
  };

  // Same locking discipline as rename: lock-coupled common prefix, then both
  // branches while the last common inode stays locked (Sec. 5.2). Ghost-wise
  // the a-side extends the "src" LockPath and the b-side the "dst" one; the
  // helper treats *both* as breaking paths for an exchange.
  auto lca = TraverseLocked(aparent.parts, common, LockPathRole::kRenameCommon);
  if (!lca.ok()) {
    return finish(lca.status());
  }
  Inode* base = *lca;
  held.push_back(base);

  auto descend = [&](const Path& parent_path, LockPathRole role) -> Result<Inode*> {
    Inode* cur = base;
    for (size_t i = common; i < parent_path.parts.size(); ++i) {
      if (cur->type != FileType::kDir) {
        return Errc::kNotDir;
      }
      Inode* child = LookupCharged(cur, parent_path.parts[i]);
      if (child == nullptr) {
        return Errc::kNoEnt;
      }
      LockInode(child, role);
      if (cur != base) {
        UnlockInode(cur);
        std::erase(held, cur);
      }
      held.push_back(child);
      cur = child;
    }
    return cur;
  };

  auto ares = descend(aparent, LockPathRole::kRenameSrc);
  if (!ares.ok()) {
    return fail_all(ares.status().code());
  }
  Inode* adir = *ares;
  if (adir->type != FileType::kDir) {
    return fail_all(Errc::kNotDir);
  }
  auto bres = descend(bparent, LockPathRole::kRenameDst);
  if (!bres.ok()) {
    return fail_all(bres.status().code());
  }
  Inode* bdir = *bres;
  if (bdir->type != FileType::kDir) {
    return fail_all(Errc::kNotDir);
  }
  if (base != adir && base != bdir) {
    UnlockInode(base);
    std::erase(held, base);
  }

  Inode* anode = LookupCharged(adir, a.Base());
  if (anode == nullptr) {
    return fail_all(Errc::kNoEnt);
  }
  if (a == b) {
    ObserveLp();
    UnlockAll(held);
    return finish(Status::Ok());
  }
  Inode* bnode = LookupCharged(bdir, b.Base());
  if (bnode == nullptr) {
    return fail_all(Errc::kNoEnt);
  }
  // The prechecks rule out any ancestor relation between the two nodes, so a
  // fixed a-then-b order cannot deadlock: both are children of directories
  // this thread already holds.
  LockInode(anode, LockPathRole::kRenameSrc);
  held.push_back(anode);
  LockInode(bnode, LockPathRole::kRenameDst);
  held.push_back(bnode);

  opts_.executor->Work(2 * (opts_.costs.dir_remove_ns + opts_.costs.dir_insert_ns));
  VersionBumpOpen(adir);
  if (bdir != adir) {
    VersionBumpOpen(bdir);
  }
  std::unique_ptr<Inode> owned_a = adir->dir.Remove(a.Base());
  std::unique_ptr<Inode> owned_b = bdir->dir.Remove(b.Base());
  ATOMFS_CHECK(owned_a != nullptr && owned_b != nullptr);
  ATOMFS_CHECK(adir->dir.Insert(a.Base(), std::move(owned_b)));
  ATOMFS_CHECK(bdir->dir.Insert(b.Base(), std::move(owned_a)));
  VersionTick(anode);  // both swapped nodes sit on new identity-paths
  VersionTick(bnode);
  if (bdir != adir) {
    VersionBumpClose(bdir);
  }
  VersionBumpClose(adir);

  // The exchange LP: like rename, the helper runs here first.
  ObserveLp();
  UnlockAll(held);
  return finish(Status::Ok());
}

// --- read-side and data operations -------------------------------------------

Result<Attr> AtomFs::Stat(const Path& path) {
  ObserveBegin(OpCall::StatOf(path));
  Inode* node = opts_.enable_rcu_walk ? TryOptimisticResolve(path) : nullptr;
  if (node == nullptr) {
    auto target = ResolveTargetLocked(path);
    if (!target.ok()) {
      OpResult r;
      r.status = target.status();
      ObserveEnd(r);
      return target.status();
    }
    node = *target;
  }
  opts_.executor->Work(opts_.costs.stat_ns);
  Attr attr;
  attr.ino = node->ino;
  attr.type = node->type;
  attr.size = node->type == FileType::kDir ? node->dir.size() : node->data.size();
  ObserveLp();
  UnlockInode(node);
  OpResult r;
  r.attr = attr;
  ObserveEnd(r);
  return attr;
}

Result<std::vector<DirEntry>> AtomFs::ReadDir(const Path& path) {
  ObserveBegin(OpCall::ReadDirOf(path));
  Inode* node = opts_.enable_rcu_walk ? TryOptimisticResolve(path) : nullptr;
  if (node == nullptr) {
    auto target = ResolveTargetLocked(path);
    if (!target.ok()) {
      OpResult r;
      r.status = target.status();
      ObserveEnd(r);
      return target.status();
    }
    node = *target;
  }
  if (node->type != FileType::kDir) {
    ObserveLp();
    UnlockInode(node);
    OpResult r;
    r.status = Status(Errc::kNotDir);
    ObserveEnd(r);
    return Errc::kNotDir;
  }
  std::vector<DirEntry> entries;
  entries.reserve(node->dir.size());
  node->dir.ForEach([&entries](const std::string& name, const Inode* child) {
    entries.push_back(DirEntry{name, child->ino, child->type});
  });
  opts_.executor->Work(opts_.costs.readdir_entry_ns * (entries.size() + 1));
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  ObserveLp();
  UnlockInode(node);
  OpResult r;
  r.entries = entries;
  ObserveEnd(r);
  return entries;
}

Result<size_t> AtomFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  ObserveBegin(OpCall::ReadOf(path, offset, out.size()));
  Inode* node = opts_.enable_rcu_walk ? TryOptimisticResolve(path) : nullptr;
  if (node == nullptr) {
    auto target = ResolveTargetLocked(path);
    if (!target.ok()) {
      OpResult r;
      r.status = target.status();
      ObserveEnd(r);
      return target.status();
    }
    node = *target;
  }
  if (node->type != FileType::kFile) {
    ObserveLp();
    UnlockInode(node);
    OpResult r;
    r.status = Status(Errc::kIsDir);
    ObserveEnd(r);
    return Errc::kIsDir;
  }
  const size_t n = node->data.Read(offset, out);
  opts_.executor->Work(opts_.costs.block_copy_ns * (FileData::BlocksSpanned(offset, n) + 1));
  ObserveLp();
  UnlockInode(node);
  OpResult r;
  r.nbytes = n;
  r.data.assign(out.begin(), out.begin() + static_cast<ptrdiff_t>(n));
  ObserveEnd(r);
  return n;
}

Result<size_t> AtomFs::Write(const Path& path, uint64_t offset,
                             std::span<const std::byte> data) {
  ObserveBegin(OpCall::WriteOf(path, offset, std::vector<std::byte>(data.begin(), data.end())));
  auto target = ResolveTargetLocked(path);
  if (!target.ok()) {
    OpResult r;
    r.status = target.status();
    ObserveEnd(r);
    return target.status();
  }
  Inode* node = *target;
  if (node->type != FileType::kFile) {
    ObserveLp();
    UnlockInode(node);
    OpResult r;
    r.status = Status(Errc::kIsDir);
    ObserveEnd(r);
    return Errc::kIsDir;
  }
  auto written = node->data.Write(offset, data);
  opts_.executor->Work(opts_.costs.block_copy_ns *
                       (FileData::BlocksSpanned(offset, data.size()) + 1));
  ObserveLp();
  UnlockInode(node);
  OpResult r;
  r.status = written.status();
  if (written.ok()) {
    r.nbytes = *written;
  }
  ObserveEnd(r);
  if (!written.ok()) {
    return written.status();
  }
  return *written;
}

Status AtomFs::Truncate(const Path& path, uint64_t size) {
  ObserveBegin(OpCall::TruncateOf(path, size));
  auto finish = [this](Status st) {
    OpResult r;
    r.status = st;
    ObserveEnd(r);
    return st;
  };
  auto target = ResolveTargetLocked(path);
  if (!target.ok()) {
    return finish(target.status());
  }
  Inode* node = *target;
  if (node->type != FileType::kFile) {
    ObserveLp();
    UnlockInode(node);
    return finish(Status(Errc::kIsDir));
  }
  Status st = node->data.Truncate(size);
  opts_.executor->Work(opts_.costs.block_copy_ns);
  ObserveLp();
  UnlockInode(node);
  return finish(st);
}

// --- snapshots ----------------------------------------------------------------

namespace {

void SnapshotInto(const Inode* node, SpecFs& out) {
  SpecInode spec;
  spec.type = node->type;
  if (node->type == FileType::kFile) {
    spec.data = node->data.ToBytes();
  } else {
    node->dir.ForEach([&spec](const std::string& name, const Inode* child) {
      spec.links.emplace(name, child->ino);
    });
  }
  out.imap_mutable()[node->ino] = std::move(spec);
  if (node->type == FileType::kDir) {
    node->dir.ForEach([&out](const std::string&, const Inode* child) {
      SnapshotInto(child, out);
    });
  }
}

}  // namespace

SpecFs AtomFs::SnapshotSpec() const {
  SpecFs out;
  out.imap_mutable().clear();
  SnapshotInto(root_.get(), out);
  return out;
}

}  // namespace atomfs
