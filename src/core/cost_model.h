// Virtual CPU cost model charged to the Executor by the concrete file
// systems. Under RealExecutor the charges are no-ops (real work takes real
// time); under SimExecutor they give operations realistic durations so that
// lock-contention measurements (Figure 11) have meaningful shape. The
// default values approximate an in-memory FS on a ~2-3 GHz core.

#ifndef ATOMFS_SRC_CORE_COST_MODEL_H_
#define ATOMFS_SRC_CORE_COST_MODEL_H_

#include <cstdint>

namespace atomfs {

struct CostModel {
  // Fixed entry/exit overhead per operation (argument handling, FUSE-ish
  // dispatch).
  uint64_t op_base_ns = 600;
  // Hash for one directory lookup, plus the per-chain-link walk cost: a
  // lookup in a directory whose chains are long (many files, few buckets)
  // holds the directory lock proportionally longer, which is exactly what
  // makes the paper's webproxy profile (10k files in 2 directories) scale
  // worse than fileserver under lock coupling.
  uint64_t lookup_ns = 150;
  uint64_t lookup_probe_ns = 40;
  // Directory entry insert / remove.
  uint64_t dir_insert_ns = 200;
  uint64_t dir_remove_ns = 200;
  // Filling a stat result / one readdir entry.
  uint64_t stat_ns = 100;
  uint64_t readdir_entry_ns = 40;
  // Copying one 4 KiB block of file data.
  uint64_t block_copy_ns = 500;
  // Allocating / freeing an inode.
  uint64_t inode_alloc_ns = 300;
  uint64_t inode_free_ns = 250;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_COST_MODEL_H_
