// DirTable: directory contents as a hash table of separately chained
// buckets, matching the paper's prototype ("a hash table followed by linked
// lists for directory lookups").
//
// All mutation happens under the owning inode's lock. Lookups come in two
// flavors: Find() is the classic locked lookup, and FindOptimistic() is the
// RCU-walk read path (docs/CONCURRENCY.md §4) that runs with NO locks held.
// To make the latter sound the chains are published with release/acquire
// atomics:
//
//  - bucket heads and Entry::next are std::atomic<Entry*>; Insert fully
//    constructs an entry, then release-stores it as the new head, so an
//    acquire load of the pointer sees the entry's name and child.
//  - each Entry carries a separate published child pointer
//    (std::atomic<Inode*> pub) alongside the owning unique_ptr. Remove
//    release-stores nullptr into `pub` *before* moving the unique_ptr out,
//    so a lock-free reader either sees the live inode or nullptr — never a
//    torn unique_ptr.
//  - Remove unlinks the entry but leaves its `next` pointer intact, so a
//    reader standing on the removed entry still reaches the rest of the
//    chain (the Linux dcache RCU-unlink rule). When `defer_reclaim` is set
//    the Entry shell is retired instead of deleted and freed only in the
//    destructor; a stale traversal therefore never touches freed memory.
//    (The child inode's lifetime is handled separately by the owner — see
//    AtomFs::DisposeInode's graveyard.)
//
// Entries own their child inodes: the directory tree is the ownership tree,
// and rename moves ownership between tables.

#ifndef ATOMFS_SRC_CORE_DIR_TABLE_H_
#define ATOMFS_SRC_CORE_DIR_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace atomfs {

struct Inode;

class DirTable {
 public:
  // `defer_reclaim` keeps removed entry shells alive until destruction so
  // lock-free readers (FindOptimistic) never chase a dangling next pointer.
  // Leave it false when no reader ever walks the table without the lock.
  explicit DirTable(uint32_t buckets = 64, bool defer_reclaim = false);
  ~DirTable();

  DirTable(const DirTable&) = delete;
  DirTable& operator=(const DirTable&) = delete;

  // Returns the child inode or nullptr. The returned pointer stays valid
  // while the owning directory's lock is held (or while the lock-coupling
  // protocol otherwise pins the entry). If `probes` is non-null it receives
  // the number of chain links inspected (for chain-length-aware cost
  // accounting).
  Inode* Find(std::string_view name, size_t* probes = nullptr) const;

  // Lock-free lookup for the optimistic walk: acquire-loads the chain and
  // the published child pointer. May return a child that is concurrently
  // being removed — the caller MUST validate version counters before
  // trusting anything it read (docs/CONCURRENCY.md §5). Returns nullptr on
  // a miss or when racing a removal.
  Inode* FindOptimistic(std::string_view name) const;

  // Inserts; returns false (and keeps ownership untouched) if `name` exists.
  bool Insert(std::string_view name, std::unique_ptr<Inode> child);

  // Removes and returns the child, or nullptr if absent.
  std::unique_ptr<Inode> Remove(std::string_view name);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Calls fn(name, child) for every entry, in unspecified order.
  void ForEach(const std::function<void(const std::string&, const Inode*)>& fn) const;

  // Releases ownership of every entry (used when tearing down a whole tree
  // iteratively to avoid deep recursive destructor chains).
  std::vector<std::unique_ptr<Inode>> TakeAll();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Inode> child;      // ownership; moved out by Remove
    std::atomic<Inode*> pub{nullptr};  // what lock-free readers may see
    std::atomic<Entry*> next{nullptr};
  };

  size_t BucketOf(std::string_view name) const;
  void Retire(Entry* e);

  std::vector<std::atomic<Entry*>> buckets_;
  std::vector<Entry*> retired_;  // unlinked shells, freed in ~DirTable
  size_t size_ = 0;
  const bool defer_reclaim_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_DIR_TABLE_H_
