// DirTable: directory contents as a hash table of separately chained
// buckets, matching the paper's prototype ("a hash table followed by linked
// lists for directory lookups").
//
// A DirTable is always accessed under its owning inode's lock, so it needs
// no internal synchronization. Entries own their child inodes: the
// directory tree is the ownership tree, and rename moves ownership between
// tables.

#ifndef ATOMFS_SRC_CORE_DIR_TABLE_H_
#define ATOMFS_SRC_CORE_DIR_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace atomfs {

struct Inode;

class DirTable {
 public:
  explicit DirTable(uint32_t buckets = 64);
  ~DirTable();

  DirTable(const DirTable&) = delete;
  DirTable& operator=(const DirTable&) = delete;

  // Returns the child inode or nullptr. The returned pointer stays valid
  // while the owning directory's lock is held (or while the lock-coupling
  // protocol otherwise pins the entry). If `probes` is non-null it receives
  // the number of chain links inspected (for chain-length-aware cost
  // accounting).
  Inode* Find(std::string_view name, size_t* probes = nullptr) const;

  // Inserts; returns false (and keeps ownership untouched) if `name` exists.
  bool Insert(std::string_view name, std::unique_ptr<Inode> child);

  // Removes and returns the child, or nullptr if absent.
  std::unique_ptr<Inode> Remove(std::string_view name);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Calls fn(name, child) for every entry, in unspecified order.
  void ForEach(const std::function<void(const std::string&, const Inode*)>& fn) const;

  // Releases ownership of every entry (used when tearing down a whole tree
  // iteratively to avoid deep recursive destructor chains).
  std::vector<std::unique_ptr<Inode>> TakeAll();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Inode> child;
    Entry* next = nullptr;
  };

  size_t BucketOf(std::string_view name) const;

  std::vector<Entry*> buckets_;
  size_t size_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CORE_DIR_TABLE_H_
