#include "src/core/dir_table.h"

#include "src/core/inode.h"
#include "src/util/check.h"

namespace atomfs {
namespace {

// FNV-1a over the name bytes.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

DirTable::DirTable(uint32_t buckets, bool defer_reclaim)
    : buckets_(buckets == 0 ? 1 : buckets), defer_reclaim_(defer_reclaim) {
  for (auto& head : buckets_) {
    head.store(nullptr, std::memory_order_relaxed);
  }
}

DirTable::~DirTable() {
  for (auto& head : buckets_) {
    Entry* e = head.load(std::memory_order_relaxed);
    while (e != nullptr) {
      Entry* next = e->next.load(std::memory_order_relaxed);
      delete e;
      e = next;
    }
  }
  for (Entry* e : retired_) {
    delete e;
  }
}

size_t DirTable::BucketOf(std::string_view name) const {
  return HashName(name) % buckets_.size();
}

void DirTable::Retire(Entry* e) {
  if (defer_reclaim_) {
    // Leave e->next intact: a lock-free reader parked on this shell must
    // still be able to continue down the chain it was traversing.
    retired_.push_back(e);
  } else {
    delete e;
  }
}

Inode* DirTable::Find(std::string_view name, size_t* probes) const {
  size_t walked = 0;
  // Under the owning inode's lock there is no concurrent writer, so relaxed
  // chain loads suffice.
  for (Entry* e = buckets_[BucketOf(name)].load(std::memory_order_relaxed); e != nullptr;
       e = e->next.load(std::memory_order_relaxed)) {
    ++walked;
    if (e->name == name) {
      if (probes != nullptr) {
        *probes = walked;
      }
      return e->child.get();
    }
  }
  if (probes != nullptr) {
    *probes = walked;
  }
  return nullptr;
}

Inode* DirTable::FindOptimistic(std::string_view name) const {
  // Acquire on the chain pointers pairs with Insert's release head-store, so
  // the entry's immutable fields (name) are visible. Acquire on `pub` pairs
  // with Remove's release nullptr-store: a reader either gets the live inode
  // or a miss. Either way the caller revalidates versions before believing
  // anything (docs/CONCURRENCY.md §5).
  for (const Entry* e = buckets_[BucketOf(name)].load(std::memory_order_acquire);
       e != nullptr; e = e->next.load(std::memory_order_acquire)) {
    if (e->name == name) {
      return e->pub.load(std::memory_order_acquire);
    }
  }
  return nullptr;
}

bool DirTable::Insert(std::string_view name, std::unique_ptr<Inode> child) {
  auto& head = buckets_[BucketOf(name)];
  for (Entry* e = head.load(std::memory_order_relaxed); e != nullptr;
       e = e->next.load(std::memory_order_relaxed)) {
    if (e->name == name) {
      return false;
    }
  }
  auto* entry = new Entry;
  entry->name = std::string(name);
  entry->pub.store(child.get(), std::memory_order_relaxed);
  entry->child = std::move(child);
  entry->next.store(head.load(std::memory_order_relaxed), std::memory_order_relaxed);
  // Publish: everything above is sequenced before this release store, so an
  // acquire reader that sees the new head sees a fully built entry.
  head.store(entry, std::memory_order_release);
  ++size_;
  return true;
}

std::unique_ptr<Inode> DirTable::Remove(std::string_view name) {
  auto& head = buckets_[BucketOf(name)];
  std::atomic<Entry*>* link = &head;
  while (true) {
    Entry* e = link->load(std::memory_order_relaxed);
    if (e == nullptr) {
      return nullptr;
    }
    if (e->name == name) {
      // Unpublish before touching the unique_ptr: after this store a
      // lock-free reader can no longer observe the child through this entry,
      // so moving the unique_ptr below cannot race with FindOptimistic.
      e->pub.store(nullptr, std::memory_order_release);
      std::unique_ptr<Inode> child = std::move(e->child);
      // RCU-unlink: splice e out but keep e->next so in-flight readers on e
      // still reach the chain's tail.
      link->store(e->next.load(std::memory_order_relaxed), std::memory_order_release);
      Retire(e);
      ATOMFS_CHECK(size_ > 0);
      --size_;
      return child;
    }
    link = &e->next;
  }
}

void DirTable::ForEach(const std::function<void(const std::string&, const Inode*)>& fn) const {
  for (const auto& head : buckets_) {
    for (Entry* e = head.load(std::memory_order_relaxed); e != nullptr;
         e = e->next.load(std::memory_order_relaxed)) {
      fn(e->name, e->child.get());
    }
  }
}

std::vector<std::unique_ptr<Inode>> DirTable::TakeAll() {
  std::vector<std::unique_ptr<Inode>> out;
  out.reserve(size_);
  for (auto& head : buckets_) {
    Entry* e = head.load(std::memory_order_relaxed);
    head.store(nullptr, std::memory_order_relaxed);
    while (e != nullptr) {
      Entry* next = e->next.load(std::memory_order_relaxed);
      out.push_back(std::move(e->child));
      delete e;
      e = next;
    }
  }
  size_ = 0;
  return out;
}

}  // namespace atomfs
