#include "src/core/dir_table.h"

#include "src/core/inode.h"
#include "src/util/check.h"

namespace atomfs {
namespace {

// FNV-1a over the name bytes.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

DirTable::DirTable(uint32_t buckets) : buckets_(buckets == 0 ? 1 : buckets, nullptr) {}

DirTable::~DirTable() {
  for (Entry* head : buckets_) {
    while (head != nullptr) {
      Entry* next = head->next;
      delete head;
      head = next;
    }
  }
}

size_t DirTable::BucketOf(std::string_view name) const {
  return HashName(name) % buckets_.size();
}

Inode* DirTable::Find(std::string_view name, size_t* probes) const {
  size_t walked = 0;
  for (Entry* e = buckets_[BucketOf(name)]; e != nullptr; e = e->next) {
    ++walked;
    if (e->name == name) {
      if (probes != nullptr) {
        *probes = walked;
      }
      return e->child.get();
    }
  }
  if (probes != nullptr) {
    *probes = walked;
  }
  return nullptr;
}

bool DirTable::Insert(std::string_view name, std::unique_ptr<Inode> child) {
  const size_t b = BucketOf(name);
  for (Entry* e = buckets_[b]; e != nullptr; e = e->next) {
    if (e->name == name) {
      return false;
    }
  }
  auto* entry = new Entry;
  entry->name = std::string(name);
  entry->child = std::move(child);
  entry->next = buckets_[b];
  buckets_[b] = entry;
  ++size_;
  return true;
}

std::unique_ptr<Inode> DirTable::Remove(std::string_view name) {
  const size_t b = BucketOf(name);
  Entry** link = &buckets_[b];
  while (*link != nullptr) {
    Entry* e = *link;
    if (e->name == name) {
      std::unique_ptr<Inode> child = std::move(e->child);
      *link = e->next;
      delete e;
      ATOMFS_CHECK(size_ > 0);
      --size_;
      return child;
    }
    link = &e->next;
  }
  return nullptr;
}

void DirTable::ForEach(const std::function<void(const std::string&, const Inode*)>& fn) const {
  for (Entry* head : buckets_) {
    for (Entry* e = head; e != nullptr; e = e->next) {
      fn(e->name, e->child.get());
    }
  }
}

std::vector<std::unique_ptr<Inode>> DirTable::TakeAll() {
  std::vector<std::unique_ptr<Inode>> out;
  out.reserve(size_);
  for (Entry*& head : buckets_) {
    while (head != nullptr) {
      Entry* next = head->next;
      out.push_back(std::move(head->child));
      delete head;
      head = next;
    }
  }
  size_ = 0;
  return out;
}

}  // namespace atomfs
