#include "src/biglock/big_lock_fs.h"

namespace atomfs {
namespace {

AtomFs::Options InnerOptions(const BigLockFs::Options& options) {
  AtomFs::Options inner;
  inner.executor = options.executor;
  inner.observer = nullptr;  // BigLockFs reports its own, op-level events
  inner.dir_buckets = options.dir_buckets;
  inner.costs = options.costs;
  inner.disable_inode_locks = true;
  return inner;
}

}  // namespace

BigLockFs::BigLockFs() : BigLockFs(Options{}) {}

BigLockFs::BigLockFs(Options options)
    : observer_(options.observer),
      big_lock_(options.executor->CreateLock()),
      inner_(InnerOptions(options)) {}

template <typename Fn>
auto BigLockFs::Locked(const OpCall& call, Fn&& fn) {
  const Tid tid = CurrentTid();
  big_lock_->Lock();
  if (observer_ != nullptr) {
    observer_->OnOpBegin(tid, call);
  }
  auto value = fn();
  if (observer_ != nullptr) {
    observer_->OnLp(tid, kInvalidInum);
    OpResult result;
    if constexpr (std::is_same_v<decltype(value), Status>) {
      result.status = value;
    }
    observer_->OnOpEnd(tid, result);
  }
  big_lock_->Unlock();
  return value;
}

Status BigLockFs::Mkdir(const Path& path) {
  return Locked(OpCall::MkdirOf(path), [&] { return inner_.Mkdir(path); });
}

Status BigLockFs::Mknod(const Path& path) {
  return Locked(OpCall::MknodOf(path), [&] { return inner_.Mknod(path); });
}

Status BigLockFs::Rmdir(const Path& path) {
  return Locked(OpCall::RmdirOf(path), [&] { return inner_.Rmdir(path); });
}

Status BigLockFs::Unlink(const Path& path) {
  return Locked(OpCall::UnlinkOf(path), [&] { return inner_.Unlink(path); });
}

Status BigLockFs::Rename(const Path& src, const Path& dst) {
  return Locked(OpCall::RenameOf(src, dst), [&] { return inner_.Rename(src, dst); });
}

Status BigLockFs::Exchange(const Path& a, const Path& b) {
  return Locked(OpCall::ExchangeOf(a, b), [&] { return inner_.Exchange(a, b); });
}

Result<Attr> BigLockFs::Stat(const Path& path) {
  return Locked(OpCall::StatOf(path), [&] { return inner_.Stat(path); });
}

Result<std::vector<DirEntry>> BigLockFs::ReadDir(const Path& path) {
  return Locked(OpCall::ReadDirOf(path), [&] { return inner_.ReadDir(path); });
}

Result<size_t> BigLockFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  return Locked(OpCall::ReadOf(path, offset, out.size()),
                [&] { return inner_.Read(path, offset, out); });
}

Result<size_t> BigLockFs::Write(const Path& path, uint64_t offset,
                                std::span<const std::byte> data) {
  return Locked(OpCall::WriteOf(path, offset, std::vector<std::byte>(data.begin(), data.end())),
                [&] { return inner_.Write(path, offset, data); });
}

Status BigLockFs::Truncate(const Path& path, uint64_t size) {
  return Locked(OpCall::TruncateOf(path, size), [&] { return inner_.Truncate(path, size); });
}

}  // namespace atomfs
