// BigLockFs: the coarse-grained baseline from the paper's §7.3.
//
// "In the big-lock version, all file system operations first acquire a
// big-lock and do not release the lock until the operations finish." The
// inner structure is the same AtomFS tree (same directory hash tables, same
// block store, same cost model) with per-inode locking disabled, so any
// throughput difference against AtomFs is attributable purely to the
// synchronization strategy — exactly what Figure 11 measures.
//
// Every operation is trivially linearizable (its LP is anywhere inside the
// global critical section); the observer is told the op begins, linearizes
// and ends under the lock.

#ifndef ATOMFS_SRC_BIGLOCK_BIG_LOCK_FS_H_
#define ATOMFS_SRC_BIGLOCK_BIG_LOCK_FS_H_

#include <memory>

#include "src/core/atom_fs.h"

namespace atomfs {

class BigLockFs : public FileSystem {
 public:
  struct Options {
    Executor* executor = &Executor::Real();
    FsObserver* observer = nullptr;
    uint32_t dir_buckets = 64;
    CostModel costs;
  };

  BigLockFs();
  explicit BigLockFs(Options options);

  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  SpecFs SnapshotSpec() const { return inner_.SnapshotSpec(); }

 private:
  template <typename Fn>
  auto Locked(const OpCall& call, Fn&& fn);

  FsObserver* observer_;
  std::unique_ptr<Lockable> big_lock_;
  AtomFs inner_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_BIGLOCK_BIG_LOCK_FS_H_
