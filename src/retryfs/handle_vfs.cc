#include "src/retryfs/handle_vfs.h"

#include "src/util/check.h"

namespace atomfs {

HandleVfs::HandleVfs(RetryFs* fs) : fs_(fs) { ATOMFS_CHECK(fs != nullptr); }

Result<Fd> HandleVfs::Open(std::string_view raw, uint32_t flags) {
  auto parsed = ParsePath(raw);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Path& path = *parsed;

  auto handle = fs_->OpenHandle(path);
  if (!handle.ok()) {
    if (handle.status().code() != Errc::kNoEnt || (flags & OpenFlags::kCreate) == 0) {
      return handle.status();
    }
    Status created = fs_->Mknod(path);
    if (!created.ok() && !(created.code() == Errc::kExist && (flags & OpenFlags::kExcl) == 0)) {
      return created;
    }
    handle = fs_->OpenHandle(path);
    if (!handle.ok()) {
      return handle.status();
    }
  } else if ((flags & OpenFlags::kCreate) != 0 && (flags & OpenFlags::kExcl) != 0) {
    return Errc::kExist;
  }

  auto attr = fs_->HandleStat(*handle);
  if (!attr.ok()) {
    return attr.status();
  }
  if (attr->type == FileType::kDir && (flags & OpenFlags::kWrite) != 0) {
    return Errc::kIsDir;
  }
  if (attr->type == FileType::kFile && (flags & OpenFlags::kTrunc) != 0) {
    Status st = fs_->HandleTruncate(*handle, 0);
    if (!st.ok()) {
      return st;
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  const Fd fd = next_fd_++;
  FdEntry entry;
  entry.handle = std::move(*handle);
  entry.flags = flags;
  table_.emplace(fd, std::move(entry));
  return fd;
}

Status HandleVfs::Close(Fd fd) {
  std::lock_guard<std::mutex> lk(mu_);
  // Erasing drops the handle's reference; the last reference frees an
  // unlinked inode.
  return table_.erase(fd) != 0 ? Status::Ok() : Status(Errc::kBadFd);
}

size_t HandleVfs::OpenCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return table_.size();
}

Result<HandleVfs::FdEntry> HandleVfs::Lookup(Fd fd) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(fd);
  if (it == table_.end()) {
    return Errc::kBadFd;
  }
  return it->second;
}

Result<size_t> HandleVfs::Read(Fd fd, std::span<std::byte> out) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  auto n = fs_->HandleRead(entry->handle, entry->cursor, out);
  if (n.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(fd);
    if (it != table_.end()) {
      it->second.cursor = entry->cursor + *n;
    }
  }
  return n;
}

Result<size_t> HandleVfs::Write(Fd fd, std::span<const std::byte> data) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Errc::kAccess;
  }
  uint64_t offset = entry->cursor;
  if ((entry->flags & OpenFlags::kAppend) != 0) {
    auto attr = fs_->HandleStat(entry->handle);
    if (!attr.ok()) {
      return attr.status();
    }
    offset = attr->size;
  }
  auto n = fs_->HandleWrite(entry->handle, offset, data);
  if (n.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(fd);
    if (it != table_.end()) {
      it->second.cursor = offset + *n;
    }
  }
  return n;
}

Result<size_t> HandleVfs::Pread(Fd fd, uint64_t offset, std::span<std::byte> out) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->HandleRead(entry->handle, offset, out);
}

Result<size_t> HandleVfs::Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Errc::kAccess;
  }
  return fs_->HandleWrite(entry->handle, offset, data);
}

Result<Attr> HandleVfs::Fstat(Fd fd) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->HandleStat(entry->handle);
}

Result<std::vector<DirEntry>> HandleVfs::ReadDirFd(Fd fd) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->HandleReadDir(entry->handle);
}

Status HandleVfs::Ftruncate(Fd fd, uint64_t size) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Status(Errc::kAccess);
  }
  return fs_->HandleTruncate(entry->handle, size);
}

Result<uint64_t> HandleVfs::Seek(Fd fd, uint64_t offset) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(fd);
  if (it == table_.end()) {
    return Errc::kBadFd;
  }
  it->second.cursor = offset;
  return offset;
}

}  // namespace atomfs
