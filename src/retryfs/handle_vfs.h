// HandleVfs: a POSIX-style file-descriptor layer over RetryFs's
// reference-counted inode handles — the full §5.4 "Discussion about support
// for FDs" design, at the VFS level.
//
// Contrast with the path-based Vfs (src/vfs/vfs.h), which stores an fd ->
// path mapping and re-resolves on every call (the paper's prototype
// behavior): HandleVfs resolves once at open and pins the inode, so
//   * fd I/O is immune to renames of the path,
//   * unlinked-but-open files keep working (reference count),
//   * fd data ops never traverse, matching the paper's observation that
//     "FD-based interfaces scale much better than doing a pathname
//     resolution for every read and write".

#ifndef ATOMFS_SRC_RETRYFS_HANDLE_VFS_H_
#define ATOMFS_SRC_RETRYFS_HANDLE_VFS_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "src/retryfs/retry_fs.h"
#include "src/vfs/vfs.h"

namespace atomfs {

class HandleVfs {
 public:
  explicit HandleVfs(RetryFs* fs);

  HandleVfs(const HandleVfs&) = delete;
  HandleVfs& operator=(const HandleVfs&) = delete;

  RetryFs& fs() { return *fs_; }

  // open(): resolves once; O_CREAT/O_EXCL/O_TRUNC as in vfs.h.
  Result<Fd> Open(std::string_view path, uint32_t flags);
  Status Close(Fd fd);
  size_t OpenCount() const;

  // FD data plane: operates on the pinned inode, never re-resolving.
  Result<size_t> Read(Fd fd, std::span<std::byte> out);  // advances cursor
  Result<size_t> Write(Fd fd, std::span<const std::byte> data);
  Result<size_t> Pread(Fd fd, uint64_t offset, std::span<std::byte> out);
  Result<size_t> Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data);
  Result<Attr> Fstat(Fd fd);
  Result<std::vector<DirEntry>> ReadDirFd(Fd fd);
  Status Ftruncate(Fd fd, uint64_t size);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);

 private:
  struct FdEntry {
    RetryFs::HandleRef handle;
    uint32_t flags = 0;
    uint64_t cursor = 0;
  };

  Result<FdEntry> Lookup(Fd fd) const;

  RetryFs* fs_;
  mutable std::mutex mu_;
  std::map<Fd, FdEntry> table_;
  Fd next_fd_ = 3;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_RETRYFS_HANDLE_VFS_H_
