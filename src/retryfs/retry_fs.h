// RetryFs: a traversal-retry file system in the style of Linux VFS pathname
// lookup (paper §5.1 "Linux VFS study" and §5.4).
//
// Instead of lock coupling, traversals take each directory's lock only for
// the single lookup step and hold *no* lock between steps, so operations may
// bypass each other. Integrity is restored by revalidation: a global rename
// sequence counter is sampled before the walk, and any operation that
// observes a rename during its walk (or finds its target/parent deleted)
// redoes the lookup from the root. Children are held by shared_ptr so a
// bypassed deletion can never free memory out from under a walker.
//
// The paper argues this design obeys the non-bypassable criterion without
// lock coupling at the price of much trickier reasoning — RetryFs exists to
// make that trade-off measurable (bench_ablation_traversal) and testable
// (its histories are validated with the Wing&Gong checker, since the
// helper-based LP argument does not apply to it).

#ifndef ATOMFS_SRC_RETRYFS_RETRY_FS_H_
#define ATOMFS_SRC_RETRYFS_RETRY_FS_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "src/afs/spec_fs.h"
#include "src/core/cost_model.h"
#include "src/core/file_data.h"
#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

class RetryFs : public FileSystem {
 public:
  struct Options {
    Executor* executor = &Executor::Real();
    CostModel costs;
  };

  RetryFs();
  explicit RetryFs(Options options);

  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // --- handle-based interface (paper Sec. 5.4 discussion) -------------------
  //
  // The paper sketches how AtomFS could support real file descriptors:
  // resolve with traversal retry, keep the inode alive with a reference
  // count while it is open, and let FD-based data ops go straight to the
  // inode (bypasses are harmless because the inode's own lock protects its
  // state, and FD ops have no path inter-dependency on renames). RetryFs
  // implements exactly that: OpenHandle resolves once; the returned opaque
  // handle pins the inode (shared_ptr reference count), and the Handle*
  // operations work even after the file is unlinked — POSIX
  // unlinked-but-open semantics.
  using HandleRef = std::shared_ptr<void>;
  Result<HandleRef> OpenHandle(const Path& path);
  Result<Attr> HandleStat(const HandleRef& handle);
  Result<std::vector<DirEntry>> HandleReadDir(const HandleRef& handle);
  Result<size_t> HandleRead(const HandleRef& handle, uint64_t offset, std::span<std::byte> out);
  Result<size_t> HandleWrite(const HandleRef& handle, uint64_t offset,
                             std::span<const std::byte> data);
  Status HandleTruncate(const HandleRef& handle, uint64_t size);

  // Quiescent-only snapshot for differential tests.
  SpecFs SnapshotSpec() const;

  // Total lookup restarts; the ablation bench reports retry rates.
  uint64_t RetryCount() const { return retries_.load(std::memory_order_relaxed); }

 private:
  struct Node;
  using NodePtr = std::shared_ptr<Node>;

  struct Node {
    Node(Inum ino_arg, FileType type_arg, std::unique_ptr<Lockable> lock_arg)
        : ino(ino_arg), type(type_arg), lock(std::move(lock_arg)) {}

    const Inum ino;
    const FileType type;
    const std::unique_ptr<Lockable> lock;
    bool deleted = false;                     // guarded by lock
    std::map<std::string, NodePtr> entries;   // guarded by lock (dirs)
    FileData data;                            // guarded by lock (files)
  };

  NodePtr NewNode(FileType type);

  // One lock-free-between-steps walk of parts[0..count). Returns the node,
  // or an error, or sets *retry when the walk observed interference and
  // must restart.
  Result<NodePtr> WalkOnce(const std::vector<std::string>& parts, size_t count, uint64_t seq0,
                           bool* retry);

  // Walks with retry until a stable result is obtained. On success the node
  // is returned unlocked; callers lock and revalidate (`deleted`, and for
  // mutations the rename seq).
  Result<NodePtr> Walk(const std::vector<std::string>& parts, size_t count, uint64_t* seq_out);

  Status InsertImpl(const Path& path, FileType type);
  Status DeleteImpl(const Path& path, FileType type);

  template <typename Fn>
  auto WithTarget(const Path& path, Fn&& fn);

  Options opts_;
  NodePtr root_;
  std::atomic<Inum> next_inum_{kRootInum + 1};
  std::atomic<uint64_t> rename_seq_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_RETRYFS_RETRY_FS_H_
