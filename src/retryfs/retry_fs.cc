#include "src/retryfs/retry_fs.h"

#include <algorithm>

#include "src/util/check.h"

namespace atomfs {

RetryFs::RetryFs() : RetryFs(Options{}) {}

RetryFs::RetryFs(Options options) : opts_(std::move(options)) {
  root_ = std::make_shared<Node>(kRootInum, FileType::kDir, opts_.executor->CreateLock());
}

RetryFs::NodePtr RetryFs::NewNode(FileType type) {
  opts_.executor->Work(opts_.costs.inode_alloc_ns);
  return std::make_shared<Node>(next_inum_.fetch_add(1, std::memory_order_relaxed), type,
                                opts_.executor->CreateLock());
}

Result<RetryFs::NodePtr> RetryFs::WalkOnce(const std::vector<std::string>& parts, size_t count,
                                           uint64_t seq0, bool* retry) {
  NodePtr cur = root_;
  for (size_t i = 0; i < count; ++i) {
    cur->lock->Lock();
    if (cur->deleted) {
      cur->lock->Unlock();
      *retry = true;
      return Errc::kNoEnt;
    }
    if (cur->type != FileType::kDir) {
      cur->lock->Unlock();
      return Errc::kNotDir;
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto it = cur->entries.find(parts[i]);
    NodePtr child = it == cur->entries.end() ? nullptr : it->second;
    cur->lock->Unlock();
    if (child == nullptr) {
      if (rename_seq_.load(std::memory_order_acquire) != seq0) {
        // The miss may be an artifact of a concurrent rename; revalidate.
        *retry = true;
      }
      return Errc::kNoEnt;
    }
    cur = std::move(child);
  }
  return cur;
}

Result<RetryFs::NodePtr> RetryFs::Walk(const std::vector<std::string>& parts, size_t count,
                                       uint64_t* seq_out) {
  while (true) {
    const uint64_t seq0 = rename_seq_.load(std::memory_order_acquire);
    bool retry = false;
    auto res = WalkOnce(parts, count, seq0, &retry);
    if (!retry) {
      *seq_out = seq0;
      return res;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

// Locks the walked-to node and revalidates (not deleted; no rename since the
// walk began). Retries the whole lookup on interference, then runs fn with
// the node locked. fn returns its op result; kind of result varies, so this
// is a template over the callable.
template <typename Fn>
auto RetryFs::WithTarget(const Path& path, Fn&& fn) {
  using R = decltype(fn(std::declval<Node*>()));
  while (true) {
    uint64_t seq0 = 0;
    auto walked = Walk(path.parts, path.parts.size(), &seq0);
    if (!walked.ok()) {
      return R(walked.status());
    }
    NodePtr node = *walked;
    node->lock->Lock();
    const bool stale =
        node->deleted || rename_seq_.load(std::memory_order_acquire) != seq0;
    if (stale) {
      node->lock->Unlock();
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto result = fn(node.get());
    node->lock->Unlock();
    return result;
  }
}

Status RetryFs::InsertImpl(const Path& path, FileType type) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  if (path.IsRoot()) {
    return Status(Errc::kExist);
  }
  while (true) {
    uint64_t seq0 = 0;
    auto walked = Walk(path.parts, path.parts.size() - 1, &seq0);
    if (!walked.ok()) {
      return walked.status();
    }
    NodePtr parent = *walked;
    parent->lock->Lock();
    if (parent->deleted || rename_seq_.load(std::memory_order_acquire) != seq0) {
      parent->lock->Unlock();
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (parent->type != FileType::kDir) {
      parent->lock->Unlock();
      return Status(Errc::kNotDir);
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    if (parent->entries.count(path.Base()) != 0) {
      parent->lock->Unlock();
      return Status(Errc::kExist);
    }
    opts_.executor->Work(opts_.costs.dir_insert_ns);
    parent->entries.emplace(path.Base(), NewNode(type));
    parent->lock->Unlock();
    return Status::Ok();
  }
}

Status RetryFs::DeleteImpl(const Path& path, FileType type) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  if (path.IsRoot()) {
    return Status(type == FileType::kDir ? Errc::kBusy : Errc::kIsDir);
  }
  while (true) {
    uint64_t seq0 = 0;
    auto walked = Walk(path.parts, path.parts.size() - 1, &seq0);
    if (!walked.ok()) {
      return walked.status();
    }
    NodePtr parent = *walked;
    parent->lock->Lock();
    if (parent->deleted || rename_seq_.load(std::memory_order_acquire) != seq0) {
      parent->lock->Unlock();
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (parent->type != FileType::kDir) {
      parent->lock->Unlock();
      return Status(Errc::kNotDir);
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto it = parent->entries.find(path.Base());
    if (it == parent->entries.end()) {
      parent->lock->Unlock();
      return Status(Errc::kNoEnt);
    }
    NodePtr child = it->second;
    // Every multi-lock acquisition in RetryFs follows address order (Rename
    // locks its sorted parent/victim set that way). Acquiring the child here
    // while holding a higher-addressed parent was a real ABBA deadlock
    // against a concurrent Rename holding the child's lock and waiting on
    // the parent (found by TSan's lock-order detector). When the child
    // cannot extend the order in place, drop the parent and reacquire both
    // sorted, then revalidate — the same optimistic pattern Rename uses.
    if (std::less<Node*>{}(parent.get(), child.get())) {
      child->lock->Lock();
    } else {
      parent->lock->Unlock();
      child->lock->Lock();
      parent->lock->Lock();
      auto it2 = parent->entries.find(path.Base());
      if (parent->deleted || child->deleted ||
          rename_seq_.load(std::memory_order_acquire) != seq0 ||
          it2 == parent->entries.end() || it2->second != child) {
        child->lock->Unlock();
        parent->lock->Unlock();
        retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      it = it2;
    }
    Errc err = Errc::kOk;
    if (type == FileType::kDir) {
      if (child->type != FileType::kDir) {
        err = Errc::kNotDir;
      } else if (!child->entries.empty()) {
        err = Errc::kNotEmpty;
      }
    } else if (child->type == FileType::kDir) {
      err = Errc::kIsDir;
    }
    if (err != Errc::kOk) {
      child->lock->Unlock();
      parent->lock->Unlock();
      return Status(err);
    }
    opts_.executor->Work(opts_.costs.dir_remove_ns);
    child->deleted = true;
    parent->entries.erase(it);
    child->lock->Unlock();
    parent->lock->Unlock();
    return Status::Ok();
  }
}

Status RetryFs::Mkdir(const Path& path) { return InsertImpl(path, FileType::kDir); }
Status RetryFs::Mknod(const Path& path) { return InsertImpl(path, FileType::kFile); }
Status RetryFs::Rmdir(const Path& path) { return DeleteImpl(path, FileType::kDir); }
Status RetryFs::Unlink(const Path& path) { return DeleteImpl(path, FileType::kFile); }

Status RetryFs::Rename(const Path& src, const Path& dst) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  if (src.IsRoot() || dst.IsRoot()) {
    return Status(Errc::kBusy);
  }
  if (src.IsPrefixOf(dst) && src != dst) {
    return Status(Errc::kInval);
  }
  const bool dst_above_src = dst.IsPrefixOf(src) && dst != src;
  const Path sparent = src.Dir();
  const Path dparent = dst.Dir();

  while (true) {
    const uint64_t seq0 = rename_seq_.load(std::memory_order_acquire);
    uint64_t walk_seq = 0;
    auto swalk = Walk(sparent.parts, sparent.parts.size(), &walk_seq);
    if (!swalk.ok()) {
      return swalk.status();
    }
    NodePtr p1 = *swalk;
    // Source-parent type precedes destination resolution (spec error order);
    // `type` is immutable, so no lock is needed.
    if (p1->type != FileType::kDir) {
      return Status(Errc::kNotDir);
    }
    auto dwalk = Walk(dparent.parts, dparent.parts.size(), &walk_seq);
    if (!dwalk.ok()) {
      return dwalk.status();
    }
    NodePtr p2 = *dwalk;

    // Lock set management: parents first in address order; if a destination
    // victim must also be locked and is not orderable after the held locks,
    // release everything and reacquire the full sorted set (optimistic
    // multi-lock with revalidation).
    std::vector<Node*> locked;
    auto lock_sorted = [&](std::vector<Node*> nodes) {
      std::sort(nodes.begin(), nodes.end(), std::less<Node*>{});
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      for (Node* n : nodes) {
        n->lock->Lock();
      }
      locked = std::move(nodes);
    };
    auto unlock_all = [&] {
      for (auto it = locked.rbegin(); it != locked.rend(); ++it) {
        (*it)->lock->Unlock();
      }
      locked.clear();
    };
    auto invalid = [&] {
      return p1->deleted || p2->deleted ||
             rename_seq_.load(std::memory_order_acquire) != seq0;
    };

    lock_sorted({p1.get(), p2.get()});
    if (invalid()) {
      unlock_all();
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (p1->type != FileType::kDir || p2->type != FileType::kDir) {
      unlock_all();
      return Status(Errc::kNotDir);
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto sit = p1->entries.find(src.Base());
    if (sit == p1->entries.end()) {
      unlock_all();
      return Status(Errc::kNoEnt);
    }
    NodePtr snode = sit->second;
    if (src == dst) {
      unlock_all();
      return Status::Ok();
    }
    if (dst_above_src) {
      const Errc err = snode->type == FileType::kFile ? Errc::kIsDir : Errc::kNotEmpty;
      unlock_all();
      return Status(err);
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto dit = p2->entries.find(dst.Base());
    NodePtr dnode = dit == p2->entries.end() ? nullptr : dit->second;
    if (dnode != nullptr) {
      if (snode->type == FileType::kDir && dnode->type != FileType::kDir) {
        unlock_all();
        return Status(Errc::kNotDir);
      }
      if (snode->type != FileType::kDir && dnode->type == FileType::kDir) {
        unlock_all();
        return Status(Errc::kIsDir);
      }
      if (std::less<Node*>{}(locked.back(), dnode.get())) {
        dnode->lock->Lock();
        locked.push_back(dnode.get());
      } else {
        // Cannot extend the address-ordered lock set in place: restart the
        // acquisition with the victim included and revalidate the lookups.
        unlock_all();
        lock_sorted({p1.get(), p2.get(), dnode.get()});
        auto sit2 = p1->entries.find(src.Base());
        auto dit2 = p2->entries.find(dst.Base());
        if (invalid() || sit2 == p1->entries.end() || sit2->second != snode ||
            dit2 == p2->entries.end() || dit2->second != dnode) {
          unlock_all();
          retries_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }
      if (dnode->type == FileType::kDir && !dnode->entries.empty()) {
        unlock_all();
        return Status(Errc::kNotEmpty);
      }
    }
    // Publish the rename: bump the sequence first (while holding all locks)
    // so that any concurrent walk that misses our locks revalidates.
    rename_seq_.fetch_add(1, std::memory_order_acq_rel);
    if (dnode != nullptr) {
      opts_.executor->Work(opts_.costs.dir_remove_ns);
      dnode->deleted = true;
      p2->entries.erase(dst.Base());
    }
    opts_.executor->Work(opts_.costs.dir_remove_ns + opts_.costs.dir_insert_ns);
    p1->entries.erase(src.Base());
    p2->entries[dst.Base()] = snode;
    unlock_all();
    return Status::Ok();
  }
}

Status RetryFs::Exchange(const Path& a, const Path& b) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  if (a.IsRoot() || b.IsRoot()) {
    return Status(Errc::kBusy);
  }
  if ((a.IsPrefixOf(b) || b.IsPrefixOf(a)) && a != b) {
    return Status(Errc::kInval);
  }
  const Path aparent = a.Dir();
  const Path bparent = b.Dir();

  while (true) {
    const uint64_t seq0 = rename_seq_.load(std::memory_order_acquire);
    uint64_t walk_seq = 0;
    auto awalk = Walk(aparent.parts, aparent.parts.size(), &walk_seq);
    if (!awalk.ok()) {
      return awalk.status();
    }
    NodePtr p1 = *awalk;
    if (p1->type != FileType::kDir) {
      return Status(Errc::kNotDir);
    }
    auto bwalk = Walk(bparent.parts, bparent.parts.size(), &walk_seq);
    if (!bwalk.ok()) {
      return bwalk.status();
    }
    NodePtr p2 = *bwalk;

    std::vector<Node*> locked{p1.get(), p2.get()};
    std::sort(locked.begin(), locked.end(), std::less<Node*>{});
    locked.erase(std::unique(locked.begin(), locked.end()), locked.end());
    for (Node* n : locked) {
      n->lock->Lock();
    }
    auto unlock_all = [&] {
      for (auto it = locked.rbegin(); it != locked.rend(); ++it) {
        (*it)->lock->Unlock();
      }
    };
    if (p1->deleted || p2->deleted ||
        rename_seq_.load(std::memory_order_acquire) != seq0) {
      unlock_all();
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (p2->type != FileType::kDir) {
      unlock_all();
      return Status(Errc::kNotDir);
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto ait = p1->entries.find(a.Base());
    if (ait == p1->entries.end()) {
      unlock_all();
      return Status(Errc::kNoEnt);
    }
    if (a == b) {
      unlock_all();
      return Status::Ok();
    }
    opts_.executor->Work(opts_.costs.lookup_ns);
    auto bit = p2->entries.find(b.Base());
    if (bit == p2->entries.end()) {
      unlock_all();
      return Status(Errc::kNoEnt);
    }
    // Publish: exchange breaks two traversed paths, so bump the rename
    // sequence before swapping (while holding both parent locks).
    rename_seq_.fetch_add(1, std::memory_order_acq_rel);
    opts_.executor->Work(2 * (opts_.costs.dir_remove_ns + opts_.costs.dir_insert_ns));
    std::swap(ait->second, bit->second);
    unlock_all();
    return Status::Ok();
  }
}

Result<Attr> RetryFs::Stat(const Path& path) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  return WithTarget(path, [this](Node* node) -> Result<Attr> {
    opts_.executor->Work(opts_.costs.stat_ns);
    Attr attr;
    attr.ino = node->ino;
    attr.type = node->type;
    attr.size = node->type == FileType::kDir ? node->entries.size() : node->data.size();
    return attr;
  });
}

Result<std::vector<DirEntry>> RetryFs::ReadDir(const Path& path) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  return WithTarget(path, [this](Node* node) -> Result<std::vector<DirEntry>> {
    if (node->type != FileType::kDir) {
      return Errc::kNotDir;
    }
    std::vector<DirEntry> entries;
    entries.reserve(node->entries.size());
    for (const auto& [name, child] : node->entries) {
      entries.push_back(DirEntry{name, child->ino, child->type});
    }
    opts_.executor->Work(opts_.costs.readdir_entry_ns * (entries.size() + 1));
    return entries;
  });
}

Result<size_t> RetryFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  return WithTarget(path, [&](Node* node) -> Result<size_t> {
    if (node->type != FileType::kFile) {
      return Errc::kIsDir;
    }
    const size_t n = node->data.Read(offset, out);
    opts_.executor->Work(opts_.costs.block_copy_ns * (FileData::BlocksSpanned(offset, n) + 1));
    return n;
  });
}

Result<size_t> RetryFs::Write(const Path& path, uint64_t offset,
                              std::span<const std::byte> data) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  return WithTarget(path, [&](Node* node) -> Result<size_t> {
    if (node->type != FileType::kFile) {
      return Errc::kIsDir;
    }
    opts_.executor->Work(opts_.costs.block_copy_ns *
                         (FileData::BlocksSpanned(offset, data.size()) + 1));
    return node->data.Write(offset, data);
  });
}

Status RetryFs::Truncate(const Path& path, uint64_t size) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  return WithTarget(path, [&](Node* node) -> Status {
    if (node->type != FileType::kFile) {
      return Status(Errc::kIsDir);
    }
    opts_.executor->Work(opts_.costs.block_copy_ns);
    return node->data.Truncate(size);
  });
}

// --- handle-based interface ---------------------------------------------------

Result<RetryFs::HandleRef> RetryFs::OpenHandle(const Path& path) {
  opts_.executor->Work(opts_.costs.op_base_ns);
  while (true) {
    uint64_t seq0 = 0;
    auto walked = Walk(path.parts, path.parts.size(), &seq0);
    if (!walked.ok()) {
      return walked.status();
    }
    NodePtr node = *walked;
    node->lock->Lock();
    const bool stale =
        node->deleted || rename_seq_.load(std::memory_order_acquire) != seq0;
    node->lock->Unlock();
    if (stale) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // The shared_ptr itself is the reference count that keeps the inode
    // alive past a later unlink.
    return HandleRef(std::move(node));
  }
}

Result<Attr> RetryFs::HandleStat(const HandleRef& handle) {
  auto node = std::static_pointer_cast<Node>(handle);
  if (node == nullptr) {
    return Errc::kBadFd;
  }
  node->lock->Lock();
  opts_.executor->Work(opts_.costs.stat_ns);
  Attr attr;
  attr.ino = node->ino;
  attr.type = node->type;
  attr.size = node->type == FileType::kDir ? node->entries.size() : node->data.size();
  node->lock->Unlock();
  return attr;
}

Result<std::vector<DirEntry>> RetryFs::HandleReadDir(const HandleRef& handle) {
  auto node = std::static_pointer_cast<Node>(handle);
  if (node == nullptr) {
    return Errc::kBadFd;
  }
  node->lock->Lock();
  if (node->type != FileType::kDir) {
    node->lock->Unlock();
    return Errc::kNotDir;
  }
  std::vector<DirEntry> entries;
  entries.reserve(node->entries.size());
  for (const auto& [name, child] : node->entries) {
    entries.push_back(DirEntry{name, child->ino, child->type});
  }
  opts_.executor->Work(opts_.costs.readdir_entry_ns * (entries.size() + 1));
  node->lock->Unlock();
  return entries;
}

Result<size_t> RetryFs::HandleRead(const HandleRef& handle, uint64_t offset,
                                   std::span<std::byte> out) {
  auto node = std::static_pointer_cast<Node>(handle);
  if (node == nullptr) {
    return Errc::kBadFd;
  }
  node->lock->Lock();
  if (node->type != FileType::kFile) {
    node->lock->Unlock();
    return Errc::kIsDir;
  }
  const size_t n = node->data.Read(offset, out);
  opts_.executor->Work(opts_.costs.block_copy_ns * (FileData::BlocksSpanned(offset, n) + 1));
  node->lock->Unlock();
  return n;
}

Result<size_t> RetryFs::HandleWrite(const HandleRef& handle, uint64_t offset,
                                    std::span<const std::byte> data) {
  auto node = std::static_pointer_cast<Node>(handle);
  if (node == nullptr) {
    return Errc::kBadFd;
  }
  node->lock->Lock();
  if (node->type != FileType::kFile) {
    node->lock->Unlock();
    return Errc::kIsDir;
  }
  opts_.executor->Work(opts_.costs.block_copy_ns *
                       (FileData::BlocksSpanned(offset, data.size()) + 1));
  auto written = node->data.Write(offset, data);
  node->lock->Unlock();
  return written;
}

Status RetryFs::HandleTruncate(const HandleRef& handle, uint64_t size) {
  auto node = std::static_pointer_cast<Node>(handle);
  if (node == nullptr) {
    return Status(Errc::kBadFd);
  }
  node->lock->Lock();
  if (node->type != FileType::kFile) {
    node->lock->Unlock();
    return Status(Errc::kIsDir);
  }
  opts_.executor->Work(opts_.costs.block_copy_ns);
  Status st = node->data.Truncate(size);
  node->lock->Unlock();
  return st;
}

SpecFs RetryFs::SnapshotSpec() const {
  SpecFs out;
  out.imap_mutable().clear();
  // Quiescent-only: walk without locks.
  struct Frame {
    const Node* node;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root_.get()});
  while (!stack.empty()) {
    const Node* node = stack.back().node;
    stack.pop_back();
    SpecInode spec;
    spec.type = node->type;
    if (node->type == FileType::kFile) {
      spec.data = node->data.ToBytes();
    } else {
      for (const auto& [name, child] : node->entries) {
        spec.links.emplace(name, child->ino);
        stack.push_back(Frame{child.get()});
      }
    }
    out.imap_mutable()[node->ino] = std::move(spec);
  }
  return out;
}

}  // namespace atomfs
