// Quickstart: create an AtomFS instance, build a small tree, do file I/O
// through both the path API and the FD layer, and print the result.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "src/core/atom_fs.h"
#include "src/vfs/vfs.h"

using namespace atomfs;

int main() {
  // An in-memory, linearizable, fine-grained concurrent file system.
  AtomFs fs;

  // Path-based operations (the paper's core interfaces).
  if (!fs.Mkdir("/projects").ok() || !fs.Mkdir("/projects/atomfs").ok()) {
    std::fprintf(stderr, "mkdir failed\n");
    return 1;
  }
  if (!WriteString(fs, "/projects/atomfs/README", "AtomFS: verified concurrency\n").ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  // rename is atomic even under concurrency (that is the whole point).
  if (!fs.Rename("/projects/atomfs", "/projects/atomfs-v1").ok()) {
    std::fprintf(stderr, "rename failed\n");
    return 1;
  }

  // The FD layer resolves paths per call (paper Sec. 5.4).
  Vfs vfs(&fs);
  auto fd = vfs.Open("/projects/atomfs-v1/README", OpenFlags::kRead);
  if (!fd.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  std::string buf(128, '\0');
  auto n = vfs.Read(*fd, std::as_writable_bytes(std::span<char>(buf.data(), buf.size())));
  if (!n.ok()) {
    std::fprintf(stderr, "read failed\n");
    return 1;
  }
  buf.resize(*n);
  std::printf("README (%zu bytes): %s", *n, buf.c_str());

  // Walk the tree.
  auto entries = fs.ReadDir("/projects");
  for (const auto& e : *entries) {
    std::printf("/projects/%s  [%s]\n", e.name.c_str(),
                e.type == FileType::kDir ? "dir" : "file");
  }

  // Errors are POSIX-shaped values, not exceptions.
  Status st = fs.Rmdir("/projects");
  std::printf("rmdir /projects -> %s (expected ENOTEMPTY)\n", ErrcName(st.code()).data());
  return 0;
}
