// Concurrent-workload example: drives the same Filebench-style worker over
// AtomFS and the big-lock baseline on the virtual-time simulator, printing a
// miniature version of the paper's Figure 11 scalability comparison.
//
//   $ ./concurrent_workload [threads]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/sim/executor.h"
#include "src/workload/filebench.h"

using namespace atomfs;

namespace {

template <typename MakeFs>
double OpsPerVirtualSecond(const FilebenchProfile& profile, int threads, MakeFs make_fs) {
  SimExecutor sim(/*cores=*/16);
  auto fs = make_fs(&sim);
  RunInSim(sim, [&] { FilebenchSetup(*fs, profile, 1); });
  const uint64_t start = sim.GlobalVirtualNanos();
  constexpr uint64_t kOps = 2000;
  for (int t = 0; t < threads; ++t) {
    sim.Spawn([&fs, &profile, t] { FilebenchWorker(*fs, profile, 10 + t, kOps); });
  }
  sim.Run();
  const double secs = static_cast<double>(sim.GlobalVirtualNanos() - start) * 1e-9;
  return static_cast<double>(kOps) * threads / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_threads = argc > 1 ? std::atoi(argv[1]) : 16;
  FilebenchProfile profile;
  profile.name = "demo-fileserver";
  profile.dirs = 64;
  profile.files = 1024;
  profile.file_bytes = 4096;
  profile.io_bytes = 4096;

  std::printf("Fileserver-style workload on 16 simulated cores\n\n");
  std::printf("%8s %20s %20s %10s\n", "threads", "AtomFS (ops/s)", "BigLock (ops/s)", "ratio");
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    const double atom = OpsPerVirtualSecond(profile, threads, [](Executor* ex) {
      AtomFs::Options o;
      o.executor = ex;
      return std::make_unique<AtomFs>(std::move(o));
    });
    const double big = OpsPerVirtualSecond(profile, threads, [](Executor* ex) {
      BigLockFs::Options o;
      o.executor = ex;
      return std::make_unique<BigLockFs>(o);
    });
    std::printf("%8d %20.0f %20.0f %9.2fx\n", threads, atom, big, atom / big);
  }
  std::printf("\nFine-grained lock coupling lets independent operations proceed in\n");
  std::printf("parallel; the big lock serializes every operation (paper Sec. 7.3).\n");
  return 0;
}
