// fsshell: a tiny interactive shell over AtomFS — in-process by default, or
// against a running atomfsd with --connect. Reads commands from stdin
// (interactive or piped):
//
//   mkdir PATH | touch PATH | rm PATH | rmdir PATH | mv SRC DST | xchg A B
//   ls PATH    | stat PATH  | cat PATH | write PATH TEXT... | tree [PATH]
//   txbegin | txcommit | txabort (remote mounts served with --journal: open /
//   commit / roll back an atomic multi-op transaction; every path command in
//   between executes inside it)
//   checkpoint (remote journaled mounts: checkpoint + compact the server's
//   journal now, bounding its recovery replay)
//   metrics (remote mounts only: fetch and print the atomtrace dump)
//   trace-dump [FILE] (remote: fetch the flight-recorder ring as Perfetto JSON)
//   prom (remote: fetch the metrics registry in Prometheus text format)
//   help | quit
//
//   $ printf 'mkdir /a\nwrite /a/f hello world\ncat /a/f\ntree /\n' | ./fsshell
//   $ ./fsshell --connect unix:/tmp/atomfs.sock     # remote mount
//   $ ./fsshell --connect tcp:7070

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/core/atom_fs.h"

using namespace atomfs;

namespace {

void PrintStatus(const char* what, Status st) {
  if (st.ok()) {
    std::printf("ok\n");
  } else {
    std::printf("%s: %s\n", what, ErrcName(st.code()).data());
  }
}

void Tree(FileSystem& fs, const std::string& path, int depth) {
  auto entries = fs.ReadDir(path);
  if (!entries.ok()) {
    return;
  }
  for (const auto& e : *entries) {
    std::printf("%*s%s%s\n", depth * 2, "", e.name.c_str(),
                e.type == FileType::kDir ? "/" : "");
    if (e.type == FileType::kDir) {
      Tree(fs, (path == "/" ? "" : path) + "/" + e.name, depth + 1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<FileSystem> owned;
  AtomFsClient* remote = nullptr;  // non-null iff --connect; powers `metrics`
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      auto client = AtomFsClient::Connect(argv[++i]);
      if (!client.ok()) {
        std::fprintf(stderr, "fsshell: cannot connect to %s: %s\n", argv[i],
                     ErrcName(client.status().code()).data());
        return 1;
      }
      remote = client->get();
      // Status lines go to stderr so piped stdout stays script-clean.
      std::fprintf(stderr, "fsshell: connected, protocol v%u, max_inflight=%u, caps=%s\n",
                   remote->protocol_version(), remote->max_inflight(),
                   FsCapsToString(remote->Capabilities()).c_str());
      owned = std::move(*client);
    } else {
      std::fprintf(stderr, "usage: fsshell [--connect unix:PATH|tcp:PORT]\n");
      return 2;
    }
  }
  if (!owned) {
    owned = std::make_unique<AtomFs>();
  }
  FileSystem& fs = *owned;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') {
      continue;
    }
    std::string a;
    std::string b;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      std::printf(
          "mkdir touch rm rmdir mv xchg ls stat cat write tree txbegin "
          "txcommit txabort checkpoint metrics trace-dump prom quit\n");
    } else if (cmd == "txbegin") {
      if (remote == nullptr) {
        std::printf("txbegin: only available on a remote mount (--connect)\n");
        continue;
      }
      auto txid = remote->TxBegin();
      if (!txid.ok()) {
        std::printf("txbegin: %s\n", ErrcName(txid.status().code()).data());
        continue;
      }
      std::printf("txn %llu open\n", static_cast<unsigned long long>(*txid));
    } else if (cmd == "txcommit") {
      if (remote == nullptr) {
        std::printf("txcommit: only available on a remote mount (--connect)\n");
        continue;
      }
      PrintStatus("txcommit", remote->TxCommit());
    } else if (cmd == "txabort") {
      if (remote == nullptr) {
        std::printf("txabort: only available on a remote mount (--connect)\n");
        continue;
      }
      PrintStatus("txabort", remote->TxAbort());
    } else if (cmd == "checkpoint") {
      if (remote == nullptr) {
        std::printf("checkpoint: only available on a remote mount (--connect)\n");
        continue;
      }
      PrintStatus("checkpoint", remote->Checkpoint());
    } else if (cmd == "trace-dump") {
      if (remote == nullptr) {
        std::printf("trace-dump: only available on a remote mount (--connect)\n");
        continue;
      }
      auto json = remote->FetchTraceJson();
      if (!json.ok()) {
        std::printf("trace-dump: %s\n", ErrcName(json.status().code()).data());
        continue;
      }
      if (in >> a) {
        std::FILE* f = std::fopen(a.c_str(), "w");
        if (f == nullptr) {
          std::printf("trace-dump: cannot open %s\n", a.c_str());
          continue;
        }
        std::fputs(json->c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %zu bytes to %s (load in ui.perfetto.dev)\n",
                    json->size(), a.c_str());
      } else {
        std::fputs(json->c_str(), stdout);
        std::fputc('\n', stdout);
      }
    } else if (cmd == "prom") {
      if (remote == nullptr) {
        std::printf("prom: only available on a remote mount (--connect)\n");
        continue;
      }
      auto text = remote->FetchPrometheus();
      if (!text.ok()) {
        std::printf("prom: %s\n", ErrcName(text.status().code()).data());
        continue;
      }
      std::fputs(text->c_str(), stdout);
    } else if (cmd == "metrics") {
      if (remote == nullptr) {
        std::printf("metrics: only available on a remote mount (--connect)\n");
        continue;
      }
      auto snap = remote->FetchMetrics();
      if (!snap.ok()) {
        std::printf("metrics: %s\n", ErrcName(snap.status().code()).data());
        continue;
      }
      std::fputs(snap->ToText().c_str(), stdout);
    } else if (cmd == "mkdir" && in >> a) {
      PrintStatus("mkdir", fs.Mkdir(a));
    } else if (cmd == "touch" && in >> a) {
      PrintStatus("touch", fs.Mknod(a));
    } else if (cmd == "rm" && in >> a) {
      PrintStatus("rm", fs.Unlink(a));
    } else if (cmd == "rmdir" && in >> a) {
      PrintStatus("rmdir", fs.Rmdir(a));
    } else if (cmd == "mv" && in >> a >> b) {
      PrintStatus("mv", fs.Rename(a, b));
    } else if (cmd == "xchg" && in >> a >> b) {
      PrintStatus("xchg", fs.Exchange(a, b));
    } else if (cmd == "ls" && in >> a) {
      auto entries = fs.ReadDir(a);
      if (!entries.ok()) {
        std::printf("ls: %s\n", ErrcName(entries.status().code()).data());
        continue;
      }
      for (const auto& e : *entries) {
        std::printf("%s%s\n", e.name.c_str(), e.type == FileType::kDir ? "/" : "");
      }
    } else if (cmd == "stat" && in >> a) {
      auto attr = fs.Stat(a);
      if (!attr.ok()) {
        std::printf("stat: %s\n", ErrcName(attr.status().code()).data());
        continue;
      }
      std::printf("ino=%llu type=%s size=%llu\n", static_cast<unsigned long long>(attr->ino),
                  attr->type == FileType::kDir ? "dir" : "file",
                  static_cast<unsigned long long>(attr->size));
    } else if (cmd == "cat" && in >> a) {
      auto text = ReadString(fs, a);
      if (!text.ok()) {
        std::printf("cat: %s\n", ErrcName(text.status().code()).data());
        continue;
      }
      std::printf("%s\n", text->c_str());
    } else if (cmd == "write" && in >> a) {
      std::string rest;
      std::getline(in, rest);
      if (!rest.empty() && rest.front() == ' ') {
        rest.erase(rest.begin());
      }
      PrintStatus("write", WriteString(fs, a, rest));
    } else if (cmd == "tree") {
      if (!(in >> a)) {
        a = "/";
      }
      std::printf("%s\n", a.c_str());
      Tree(fs, a, 1);
    } else {
      std::printf("unknown command (try: help)\n");
    }
  }
  return 0;
}
