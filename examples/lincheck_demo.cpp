// Linearizability-checking demo: reproduces the paper's Figure 1 on live
// code and shows why the helper mechanism is necessary.
//
// A mkdir(/a/b/c) is parked mid-traversal while a rename(/a, /e) completes.
// The CRL-H monitor, attached as an observer, helps the mkdir at the
// rename's linearization point. The demo then replays three sequential
// orders against the abstract specification:
//   1. the helper-derived order        -> legal
//   2. the fixed-LP (temporal) order   -> ILLEGAL (Figure 1)
//   3. the Wing&Gong search            -> confirms the history is linearizable
//
//   $ ./lincheck_demo

#include <cstdio>

#include "src/core/atom_fs.h"
#include "src/crlh/gate.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/crlh/op_thread.h"

using namespace atomfs;

int main() {
  CrlhMonitor monitor;
  GateObserver gate;
  TeeObserver tee(&monitor, &gate);
  AtomFs::Options opts;
  opts.observer = &tee;
  AtomFs fs(std::move(opts));

  fs.Mkdir("/a");
  fs.Mkdir("/a/b");
  const Inum ino_a = fs.Stat("/a")->ino;

  std::printf("T1: mkdir(/a/b/c) starts, traverses through /a, and halts...\n");
  OpThread mkdir_op([&] {
    Status st = fs.Mkdir("/a/b/c");
    std::printf("T1: mkdir(/a/b/c) -> %s\n", ErrcName(st.code()).data());
  });
  gate.Arm(mkdir_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  mkdir_op.Go();
  gate.WaitParked(mkdir_op.tid());

  std::printf("T2: rename(/a, /e) runs to completion...\n");
  Status st = fs.Rename("/a", "/e");
  std::printf("T2: rename(/a, /e) -> %s\n", ErrcName(st.code()).data());
  std::printf("    CRL-H helper linearized %llu operation(s) at the rename LP\n",
              static_cast<unsigned long long>(monitor.helped_ops()));

  gate.Open(mkdir_op.tid());
  mkdir_op.Join();

  std::printf("\nFinal tree: /e/b/c exists? %s\n", fs.Stat("/e/b/c").ok() ? "yes" : "no");
  std::printf("Monitor verdict: %s\n", monitor.ok() ? "linearizable (refinement holds)"
                                                    : "VIOLATION");

  // Offline replays.
  auto recs = monitor.Completed();
  auto history = HistoryFromRecords(recs);
  std::vector<uint64_t> helper_keys;
  std::vector<uint64_t> fixed_keys;
  for (const auto& r : recs) {
    helper_keys.push_back(r.abs_seq);
    fixed_keys.push_back(r.lp_seq);
  }
  auto helper_mismatch = ReplayOrder(history, OrderBy(history, helper_keys));
  auto fixed_mismatch = ReplayOrder(history, OrderBy(history, fixed_keys));
  std::printf("\nReplay of the helper order:   %s\n",
              helper_mismatch.has_value() ? "ILLEGAL" : "legal");
  std::printf("Replay of the fixed-LP order: %s  <- Figure 1: rename before mkdir is "
              "illegal\n",
              fixed_mismatch.has_value() ? "ILLEGAL" : "legal");

  auto verdict = CheckLinearizable(history);
  std::printf("Wing&Gong exhaustive search:  %s (%llu states)\n",
              verdict.linearizable ? "linearizable" : "NOT linearizable",
              static_cast<unsigned long long>(verdict.states_explored));
  return monitor.ok() && !helper_mismatch.has_value() && fixed_mismatch.has_value() &&
                 verdict.linearizable
             ? 0
             : 1;
}
