#!/usr/bin/env bash
# Tier-1 verification, as pinned in ROADMAP.md: configure, build, and run the
# full ctest suite — which includes the atomfsd end-to-end smoke test
# (tools/atomfsd_smoke.sh), so the serving layer is covered by default.
#
# After the full suite, a focused observability stage re-runs the atomtrace
# tests (obs_test: registry/trace-ring/METRICS/docs-drift) and the atomfsd
# smoke (which asserts a parseable --metrics-dump with nonzero op counters)
# by name, so a regression there is called out explicitly even when someone
# trims the main suite.
#
# Usage: tools/run_tier1.sh [BUILD_DIR]   (default: build)
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}

# Reuse an existing build tree: re-running cmake on a populated cache is
# cheap but not free (generator re-runs touch every subdirectory), and the
# incremental build below picks up source changes either way.
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "--- observability stage (obs_test + atomfsd smoke) ---"
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^(obs_test|atomfsd_smoke)$'

echo "--- pipelined serving stage (64 connections x 8 in flight, monitored) ---"
# tools/pipeline_smoke.sh: bench_server_throughput --connections 64
# --pipeline 8 --check against a monitored atomfsd on a Unix socket; fails
# on any non-OK reply or a per-connection fairness ratio above 10x.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^pipeline_smoke$'

echo "--- rcu-walk smoke stage (optimistic read path, validation gate) ---"
# bench_server_throughput --rcu-smoke: a short paired-slice run of the
# lock-coupled walk against the optimistic (RCU) walk over the real wire.
# Fails unless the optimistic path actually engaged (attempts > 0) and every
# optimistic read was version-validated (core.rcuwalk.unvalidated_reads == 0
# — the unsafe skip-validation hook must never be live outside tests).
"$BUILD_DIR/bench/bench_server_throughput" --rcu-smoke --clients 2 --ops 150

echo "--- sharded-namespace stage (4 shards, cross-shard migrations, monitored) ---"
# tools/shard_smoke.sh: a monitored atomfsd --fs-shards 4 driven with
# cross-shard renames/exchange and a concurrent reader; requires the
# sharding HELLO capability, 5 committed migrations, and a clean CRL-H exit.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^shard_smoke$'

echo "--- crash-consistency stage (bounded sweep + kill -9 recovery) ---"
# tools/crash_smoke.sh: the durability refinement check at a small record
# bound (6 txns, <=64 sampled crash points per sweep), then a journaled
# atomfsd killed with SIGKILL mid-serving and restarted on the same journal —
# committed transactions must survive, open ones must vanish.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^crash_smoke$'

echo "--- sanitizer stage (TSan + ASan/UBSan, label 'sanitize') ---"
# Builds build-tsan/ and build-asan/ and runs the concurrency-heavy test core
# under each (tools/run_sanitizers.sh --quick). Any unsuppressed report fails
# the stage. Set ATOMFS_SKIP_SANITIZERS=1 to skip on hosts where the double
# build is too slow; CI must not skip it.
if [[ "${ATOMFS_SKIP_SANITIZERS:-0}" == 1 ]]; then
  echo "skipped (ATOMFS_SKIP_SANITIZERS=1)"
else
  "$REPO_ROOT/tools/run_sanitizers.sh" --quick
fi
