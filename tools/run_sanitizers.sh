#!/usr/bin/env bash
# Sanitizer gate: build the tree twice — once under ThreadSanitizer and once
# under AddressSanitizer+UBSan — and run the test suite in each. Exits 0 only
# when both runs finish with zero unsuppressed reports; any sanitizer finding
# aborts the offending test (halt_on_error / abort_on_error below), so a
# report is a test failure, never a warning that scrolls by.
#
# Suppression policy (tools/sanitizers/*.supp): suppressions are for
# third-party code only. Every report rooted in atomfs source gets a fix and,
# where reproducible, a regression test — see docs/SANITIZERS.md.
#
# Usage: tools/run_sanitizers.sh [--quick] [--tsan-only|--asan-only]
#   --quick      run only tests labeled `sanitize` (the concurrency-heavy
#                core: race_stress_test, server_test, stress_test, obs_test,
#                trace_test, wire_test, sim_executor_test, monitor_test, and
#                the example demos) instead of the full suite. This is what
#                the run_tier1.sh sanitizer stage uses.
#   --tsan-only  build/run just the ThreadSanitizer tree (build-tsan/)
#   --asan-only  build/run just the ASan+UBSan tree (build-asan/)
#
# Deterministic repro: the stress harness seeds from ATOMFS_STRESS_SEED; a
# failing run prints the seed, re-export it to replay the same schedule mix.
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
SUPP_DIR="$REPO_ROOT/tools/sanitizers"
JOBS=$(nproc)

QUICK=0
RUN_TSAN=1
RUN_ASAN=1
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --tsan-only) RUN_ASAN=0 ;;
    --asan-only) RUN_TSAN=0 ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: tools/run_sanitizers.sh [--quick] [--tsan-only|--asan-only]" >&2
      exit 2
      ;;
  esac
done

# Instrumented binaries run 5-20x slower, so the pipeline smoke's per-
# connection fairness ratio measures sanitizer scheduling skew, not server
# fairness; relax that one timing threshold (tools/pipeline_smoke.sh).
# Correctness gates — non-OK replies, starved connections, monitor verdict —
# are unaffected.
export ATOMFS_FAIRNESS_LIMIT=${ATOMFS_FAIRNESS_LIMIT:-64}
export ATOMFS_SMOKE_CONNECTIONS=${ATOMFS_SMOKE_CONNECTIONS:-16}

CTEST_ARGS=(--output-on-failure -j "$JOBS")
if [[ "$QUICK" == 1 ]]; then
  CTEST_ARGS+=(-L sanitize)
fi

run_tree() {
  local name=$1 build_dir=$2 mode=$3
  echo "=== [$name] configure + build ($build_dir, ATOMFS_SANITIZE=$mode) ==="
  # Cache the instrumented tree across runs: reconfigure only when the tree
  # is fresh or was configured for a different sanitizer mode (the cached
  # ATOMFS_SANITIZE value is authoritative — a stale mismatch would silently
  # run uninstrumented tests). CMake re-runs itself from the build rule when
  # CMakeLists.txt changes, so skipping the explicit configure is safe.
  if [[ ! -f "$build_dir/CMakeCache.txt" ]] ||
     ! grep -q "^ATOMFS_SANITIZE:[^=]*=$mode\$" "$build_dir/CMakeCache.txt"; then
    cmake -B "$build_dir" -S "$REPO_ROOT" -DATOMFS_SANITIZE="$mode" >/dev/null
  else
    echo "=== [$name] reusing cached configure ==="
  fi
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] ctest ${CTEST_ARGS[*]} ==="
  ctest --test-dir "$build_dir" "${CTEST_ARGS[@]}"
}

if [[ "$RUN_TSAN" == 1 ]]; then
  # halt_on_error turns the first race report into a hard test failure.
  # second_deadlock_stack gives both lock orders on lock-inversion reports.
  export TSAN_OPTIONS="suppressions=$SUPP_DIR/tsan.supp halt_on_error=1 second_deadlock_stack=1 history_size=7"
  run_tree tsan "$REPO_ROOT/build-tsan" thread
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  export ASAN_OPTIONS="abort_on_error=1 detect_stack_use_after_return=1 check_initialization_order=1 strict_init_order=1"
  export LSAN_OPTIONS="suppressions=$SUPP_DIR/lsan.supp"
  export UBSAN_OPTIONS="suppressions=$SUPP_DIR/ubsan.supp print_stacktrace=1 halt_on_error=1"
  run_tree asan "$REPO_ROOT/build-asan" address,undefined
fi

echo "=== sanitizers clean ==="
