#!/usr/bin/env bash
# Crash-injection smoke (wired into ctest; see tools/CMakeLists.txt) in three
# stages:
#
#   1. A bounded run of the durability refinement sweep: crash_injection_test
#      with a small transaction mix (ATOMFS_CRASH_TXNS) and a sampled crash
#      surface (ATOMFS_CRASH_MAX_POINTS), so every record-boundary, torn-write,
#      and bit-flip crash point it does visit must recover to an exact prefix
#      of the committed history — fast enough for tier-1, same zero-divergence
#      bar as the full sweep.
#
#   2. An end-to-end kill -9 of a journaled atomfsd: commit a transaction over
#      the wire, leave a second transaction open, SIGKILL the daemon, restart
#      it on the same journal, and require the committed data back and the
#      uncommitted transaction invisible.
#
#   3. The same kill -9 across a checkpoint boundary: a checkpointing daemon
#      (--checkpoint-units plus a SIGHUP-forced checkpoint) is SIGKILLed after
#      committing data both before and after the rotation; restart must
#      recover from the checkpoint + WAL suffix and see all of it.
#
# Usage: crash_smoke.sh /path/to/crash_injection_test /path/to/atomfsd /path/to/fsshell
set -euo pipefail

CRASH_TEST=${1:?usage: crash_smoke.sh CRASH_INJECTION_TEST ATOMFSD FSSHELL}
ATOMFSD=${2:?usage: crash_smoke.sh CRASH_INJECTION_TEST ATOMFSD FSSHELL}
FSSHELL=${3:?usage: crash_smoke.sh CRASH_INJECTION_TEST ATOMFSD FSSHELL}

WORK=$(mktemp -d)
DAEMON_PID=
trap 'kill -9 "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "--- stage 1: bounded durability refinement sweep ---"
ATOMFS_CRASH_TXNS=6 ATOMFS_CRASH_MAX_POINTS=64 \
  "$CRASH_TEST" --gtest_brief=1 || {
    echo "FAIL: bounded crash-injection sweep found a divergence"; exit 1; }

echo "--- stage 2: kill -9 a journaled atomfsd, recover, verify ---"
JOURNAL="$WORK/atomfs.wal"
SOCK1="$WORK/gen1.sock"

"$ATOMFSD" --unix "$SOCK1" --journal "$JOURNAL" --workers 2 \
  > "$WORK/gen1.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK1" ] && break; sleep 0.1; done
[ -S "$SOCK1" ] || { echo "FAIL: gen1 daemon never created $SOCK1"; cat "$WORK/gen1.log"; exit 1; }

# One committed transaction: both ops must survive the crash together.
printf 'txbegin\nmkdir /cfg\nwrite /cfg/a committed-v1\ntxcommit\ncat /cfg/a\n' \
  | "$FSSHELL" --connect "unix:$SOCK1" > "$WORK/commit.out"
grep -q 'committed-v1' "$WORK/commit.out" || {
  echo "FAIL: committed transaction not readable pre-crash"; cat "$WORK/commit.out"; exit 1; }

# One transaction left open when its connection drops: nothing may survive.
printf 'txbegin\nmkdir /lost\nwrite /lost/f never\n' \
  | "$FSSHELL" --connect "unix:$SOCK1" > "$WORK/open.out"

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true

SOCK2="$WORK/gen2.sock"
"$ATOMFSD" --unix "$SOCK2" --journal "$JOURNAL" --workers 2 \
  > "$WORK/gen2.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK2" ] && break; sleep 0.1; done
[ -S "$SOCK2" ] || { echo "FAIL: gen2 daemon never created $SOCK2"; cat "$WORK/gen2.log"; exit 1; }

grep -q 'recovered' "$WORK/gen2.log" || {
  echo "FAIL: restart printed no recovery banner"; cat "$WORK/gen2.log"; exit 1; }

printf 'cat /cfg/a\nstat /lost\nls /\n' \
  | "$FSSHELL" --connect "unix:$SOCK2" > "$WORK/recovered.out"
grep -q 'committed-v1' "$WORK/recovered.out" || {
  echo "FAIL: committed transaction lost across kill -9"
  cat "$WORK/recovered.out"; cat "$WORK/gen2.log"; exit 1; }
grep -q 'stat: ENOENT' "$WORK/recovered.out" || {
  echo "FAIL: uncommitted transaction leaked across kill -9"
  cat "$WORK/recovered.out"; exit 1; }

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
  echo "FAIL: gen2 daemon exited non-zero"; cat "$WORK/gen2.log"; exit 1; }

echo "--- stage 3: kill -9 across a forced checkpoint, recover, verify ---"
CKJOURNAL="$WORK/ckpt.wal"
SOCK3="$WORK/gen3.sock"
"$ATOMFSD" --unix "$SOCK3" --journal "$CKJOURNAL" --checkpoint-units 64 --workers 2 \
  > "$WORK/gen3.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK3" ] && break; sleep 0.1; done
[ -S "$SOCK3" ] || { echo "FAIL: gen3 daemon never created $SOCK3"; cat "$WORK/gen3.log"; exit 1; }

printf 'mkdir /pre\nwrite /pre/f before-checkpoint\n' \
  | "$FSSHELL" --connect "unix:$SOCK3" > /dev/null
kill -HUP "$DAEMON_PID"   # force the checkpoint + WAL rotation now
for _ in $(seq 1 100); do
  grep -q 'checkpointed' "$WORK/gen3.log" && break; sleep 0.1
done
grep -q 'checkpointed' "$WORK/gen3.log" || {
  echo "FAIL: SIGHUP produced no checkpoint"; cat "$WORK/gen3.log"; exit 1; }
[ -f "$CKJOURNAL.ckpt" ] || {
  echo "FAIL: no checkpoint file next to the journal"; ls "$WORK"; exit 1; }

# Post-checkpoint suffix — committed, then checkpointed again through the
# wire op this time — then die without warning.
printf 'txbegin\nmkdir /post\nwrite /post/f after-checkpoint\ntxcommit\ncheckpoint\n' \
  | "$FSSHELL" --connect "unix:$SOCK3" > "$WORK/wire_ckpt.out"
# fsshell prints a bare "ok" per successful op and "<cmd>: E..." on failure:
# all four commands must have succeeded, the checkpoint included.
if grep -q ': E' "$WORK/wire_ckpt.out" || \
   [ "$(grep -cx 'ok' "$WORK/wire_ckpt.out")" -ne 4 ]; then
  echo "FAIL: wire CHECKPOINT op did not succeed"; cat "$WORK/wire_ckpt.out"; exit 1
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true

SOCK4="$WORK/gen4.sock"
"$ATOMFSD" --unix "$SOCK4" --journal "$CKJOURNAL" --workers 2 \
  > "$WORK/gen4.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK4" ] && break; sleep 0.1; done
[ -S "$SOCK4" ] || { echo "FAIL: gen4 daemon never created $SOCK4"; cat "$WORK/gen4.log"; exit 1; }

grep -q 'checkpoint base' "$WORK/gen4.log" || {
  echo "FAIL: restart did not recover from the checkpoint"; cat "$WORK/gen4.log"; exit 1; }
printf 'cat /pre/f\ncat /post/f\n' \
  | "$FSSHELL" --connect "unix:$SOCK4" > "$WORK/ckpt.out"
grep -q 'before-checkpoint' "$WORK/ckpt.out" || {
  echo "FAIL: pre-checkpoint data lost across kill -9"
  cat "$WORK/ckpt.out"; cat "$WORK/gen4.log"; exit 1; }
grep -q 'after-checkpoint' "$WORK/ckpt.out" || {
  echo "FAIL: post-checkpoint suffix lost across kill -9"
  cat "$WORK/ckpt.out"; cat "$WORK/gen4.log"; exit 1; }

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
  echo "FAIL: gen4 daemon exited non-zero"; cat "$WORK/gen4.log"; exit 1; }

echo "PASS: crash smoke (bounded sweep clean; committed txn survived kill -9, open txn invisible; checkpoint boundary survived kill -9)"
