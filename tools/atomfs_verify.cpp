// atomfs_verify: command-line linearizability verification driver.
//
// Modes:
//   --trace FILE            Replay a sequential trace against AtomFS and the
//                           abstract spec, reporting any divergence.
//   --bundle FILE           Replay a post-mortem violation bundle (written by
//                           atomfsd --bundle-out or harvested from a
//                           CrlhMonitor) through the abstract spec and report
//                           whether the recorded verdict reproduces.
//   --random                Generate a random concurrent program and explore
//                           schedules (default mode).
//
// Random-mode options:
//   --threads N             worker threads                (default 3)
//   --ops N                 ops per thread                (default 6)
//   --rename-pct P          percentage of rename ops      (default 30)
//   --exchange-pct P        percentage of exchange ops    (default 10)
//   --seed S                program generator seed        (default 1)
//   --exhaustive            enumerate ALL schedules (else random sampling)
//   --runs N                random schedules to sample    (default 500)
//   --max-executions N      exhaustive-mode budget        (default 100000)
//   --unsafe                disable lock coupling (expect violations!)
//   --fs atomfs|retryfs|biglock
//                           which file system to explore (default atomfs;
//                           the non-atomfs designs are verified generically
//                           with the Wing&Gong checker instead of the
//                           CRL-H monitor)
//
// Exit code 0 = everything verified; 1 = a violation was found.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/afs/spec_fs.h"
#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/crlh/bundle.h"
#include "src/crlh/explore.h"
#include "src/retryfs/retry_fs.h"
#include "src/util/rand.h"
#include "src/workload/trace.h"

namespace atomfs {
namespace {

Path RandomPath(Rng& rng) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  Path p;
  const size_t depth = rng.Between(1, 3);
  for (size_t i = 0; i < depth; ++i) {
    p.parts.emplace_back(kNames[rng.Below(4)]);
  }
  return p;
}

int VerifyTrace(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", file);
    return 1;
  }
  auto calls = ParseTrace(in);
  if (!calls.ok()) {
    std::fprintf(stderr, "malformed trace: %s\n", ErrcName(calls.status().code()).data());
    return 1;
  }
  AtomFs fs;
  SpecFs spec;
  for (size_t i = 0; i < calls->size(); ++i) {
    const OpCall& call = (*calls)[i];
    OpResult concrete = RunOp(fs, call);
    OpResult abstract = RunOp(spec, call);
    if (!ResultsEquivalent(call.kind, concrete, abstract)) {
      std::printf("DIVERGENCE at line %zu: %s\n  concrete: %s\n  abstract: %s\n", i + 1,
                  call.ToString().c_str(), concrete.ToString(call.kind).c_str(),
                  abstract.ToString(call.kind).c_str());
      return 1;
    }
  }
  if (!StructurallyEqual(fs.SnapshotSpec(), spec)) {
    std::printf("DIVERGENCE: final trees differ after %zu ops\n", calls->size());
    return 1;
  }
  std::printf("trace verified: %zu ops, AtomFS == spec at every step\n", calls->size());
  return 0;
}

int VerifyBundle(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", file);
    return 1;
  }
  auto bundle = ParseBundle(in);
  if (!bundle.ok()) {
    std::fprintf(stderr, "malformed bundle: %s\n", ErrcName(bundle.status().code()).data());
    return 1;
  }
  std::printf("bundle: seq=%llu, %zu history op(s), %zu descriptor(s), %zu ghost event(s)\n",
              static_cast<unsigned long long>(bundle->seq), bundle->history.size(),
              bundle->descriptors.size(), bundle->ghost.size());
  std::printf("recorded violation: %s\n", bundle->message.c_str());
  const BundleReplay replay = ReplayBundle(*bundle);
  std::printf("replay: %s\n", replay.verdict.c_str());
  return replay.reproduced ? 1 : 0;
}

}  // namespace
}  // namespace atomfs

int main(int argc, char** argv) {
  using namespace atomfs;

  const char* trace_file = nullptr;
  const char* bundle_file = nullptr;
  int threads = 3;
  int ops = 6;
  uint32_t rename_pct = 30;
  uint32_t exchange_pct = 10;
  uint64_t seed = 1;
  bool exhaustive = false;
  uint64_t runs = 500;
  uint64_t max_executions = 100000;
  bool unsafe = false;
  std::string which_fs = "atomfs";

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg("--trace")) {
      trace_file = next();
    } else if (arg("--bundle")) {
      bundle_file = next();
    } else if (arg("--threads")) {
      threads = std::atoi(next());
    } else if (arg("--ops")) {
      ops = std::atoi(next());
    } else if (arg("--rename-pct")) {
      rename_pct = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg("--exchange-pct")) {
      exchange_pct = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg("--seed")) {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--exhaustive")) {
      exhaustive = true;
    } else if (arg("--runs")) {
      runs = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--max-executions")) {
      max_executions = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--unsafe")) {
      unsafe = true;
    } else if (arg("--fs")) {
      which_fs = next();
    } else if (arg("--random")) {
      // default
    } else {
      std::fprintf(stderr, "unknown option %s (see header comment for usage)\n", argv[i]);
      return 1;
    }
  }

  if (trace_file != nullptr) {
    return VerifyTrace(trace_file);
  }
  if (bundle_file != nullptr) {
    return VerifyBundle(bundle_file);
  }

  // Random concurrent program.
  ConcurrentProgram program;
  program.unsafe_no_coupling = unsafe;
  program.setup_ops = {
      OpCall::MkdirOf(*ParsePath("/a")),
      OpCall::MkdirOf(*ParsePath("/a/b")),
      OpCall::MkdirOf(*ParsePath("/c")),
      OpCall::MknodOf(*ParsePath("/a/b/f")),
  };
  program.setup = [](FileSystem& fs) {
    fs.Mkdir("/a");
    fs.Mkdir("/a/b");
    fs.Mkdir("/c");
    fs.Mknod("/a/b/f");
  };
  Rng rng(seed);
  for (int t = 0; t < threads; ++t) {
    std::vector<OpCall> thread_ops;
    for (int i = 0; i < ops; ++i) {
      const uint64_t dice = rng.Below(100);
      if (dice < rename_pct) {
        thread_ops.push_back(OpCall::RenameOf(RandomPath(rng), RandomPath(rng)));
      } else if (dice < rename_pct + exchange_pct) {
        thread_ops.push_back(OpCall::ExchangeOf(RandomPath(rng), RandomPath(rng)));
      } else {
        switch (rng.Below(4)) {
          case 0:
            thread_ops.push_back(OpCall::MkdirOf(RandomPath(rng)));
            break;
          case 1:
            thread_ops.push_back(OpCall::MknodOf(RandomPath(rng)));
            break;
          case 2:
            thread_ops.push_back(OpCall::StatOf(RandomPath(rng)));
            break;
          default:
            thread_ops.push_back(OpCall::UnlinkOf(RandomPath(rng)));
            break;
        }
      }
    }
    program.threads.push_back(std::move(thread_ops));
  }

  ExploreStats stats;
  if (which_fs != "atomfs") {
    // Non-instrumented designs: generic Wing&Gong exploration. setup_ops
    // replace the setup function (the history checker needs the ops).
    program.setup = nullptr;
    GenericFs factory;
    if (which_fs == "retryfs") {
      factory.make = [](Executor* ex) {
        RetryFs::Options o;
        o.executor = ex;
        return std::make_unique<RetryFs>(o);
      };
    } else if (which_fs == "biglock") {
      factory.make = [](Executor* ex) {
        BigLockFs::Options o;
        o.executor = ex;
        return std::make_unique<BigLockFs>(o);
      };
    } else {
      std::fprintf(stderr, "unknown --fs %s\n", which_fs.c_str());
      return 1;
    }
    ExploreOptions options;
    options.max_executions = exhaustive ? max_executions : runs;
    stats = ExploreSchedulesWingGong(factory, program, options);
  } else if (exhaustive) {
    program.setup_ops.clear();  // the CRL-H explorer uses the setup function
    ExploreOptions options;
    options.max_executions = max_executions;
    options.check_invariants = !unsafe;  // see explore.h
    stats = ExploreSchedules(program, options);
  } else {
    program.setup_ops.clear();
    stats = ExploreRandom(program, runs, seed * 7919 + 1);
  }

  std::printf("%s exploration: %llu schedule(s)%s, %llu with helping, %llu helped ops\n",
              exhaustive ? "exhaustive" : "random",
              static_cast<unsigned long long>(stats.executions),
              stats.exhausted ? " (complete)" : "",
              static_cast<unsigned long long>(stats.schedules_with_helping),
              static_cast<unsigned long long>(stats.total_helped_ops));
  if (stats.all_ok) {
    std::printf("VERIFIED: every explored schedule is linearizable\n");
    return 0;
  }
  std::printf("VIOLATION FOUND:\n");
  for (const auto& msg : stats.failure_messages) {
    std::printf("  %s\n", msg.c_str());
  }
  std::printf("failing schedule script:");
  for (uint32_t c : stats.failing_script) {
    std::printf(" %u", c);
  }
  std::printf("\n");
  return 1;
}
