#!/usr/bin/env bash
# Sharded-namespace smoke (wired into ctest and tools/run_tier1.sh): start a
# monitored atomfsd with --fs-shards 4, drive mixed traffic from two
# concurrent remote fsshells — four tenant trees homed on all four shards
# (ta/tb/tc/td hash to shards 0/1/2/3 under the router's FNV-1a), a file
# chained through every shard by cross-shard renames plus one cross-shard
# exchange, reads/stats/writes riding alongside — then shut down gracefully
# and require: the sharding capability bit visible in the client's HELLO
# banner, every migration committed (none aborted), and a zero-violation
# CRL-H verdict deciding the daemon's exit code.
#
# Usage: shard_smoke.sh /path/to/atomfsd /path/to/fsshell
set -euo pipefail

ATOMFSD=${1:?usage: shard_smoke.sh ATOMFSD FSSHELL}
FSSHELL=${2:?usage: shard_smoke.sh ATOMFSD FSSHELL}

WORK=$(mktemp -d)
SOCK="$WORK/atomfsd.sock"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$ATOMFSD" --unix "$SOCK" --fs-shards 4 --monitor --workers 4 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never created $SOCK"; cat "$WORK/daemon.log"; exit 1; }

# Tenant setup: one root per shard, plus payload files.
printf 'mkdir /ta\nmkdir /tb\nmkdir /tc\nmkdir /td\nwrite /ta/f migrating payload\nwrite /tb/keep resident payload\nwrite /tc/sw1 swap one\nwrite /td/sw2 swap two\n' \
  | "$FSSHELL" --connect "unix:$SOCK" > "$WORK/setup.out" 2> "$WORK/setup.err"

grep -q 'caps=.*sharding' "$WORK/setup.err" || {
  echo "FAIL: HELLO banner does not advertise the sharding capability"
  cat "$WORK/setup.err"; exit 1; }

# Concurrent reader: root merges, stats, and reads on a resident file while
# the migrations below run. Its output must show the payload every time.
( for _ in $(seq 1 8); do printf 'ls /\nstat /ta\ncat /tb/keep\n'; done ) \
  | "$FSSHELL" --connect "unix:$SOCK" > "$WORK/reader.out" 2>/dev/null &
READER_PID=$!

# Cross-shard chain: /ta/f visits every shard and returns home; then one
# cross-shard exchange (shard 2 <-> shard 3). Each mv/xchg is a two-shard
# commit through the published-descriptor protocol.
printf 'mv /ta/f /tb/m\nmv /tb/m /tc/m\nmv /tc/m /td/m\nmv /td/m /ta/f\nxchg /tc/sw1 /td/sw2\ncat /ta/f\ncat /tc/sw1\nls /\n' \
  | "$FSSHELL" --connect "unix:$SOCK" > "$WORK/shell.out" 2>/dev/null

wait "$READER_PID" || { echo "FAIL: concurrent reader shell failed"; exit 1; }

grep -q 'migrating payload' "$WORK/shell.out" || {
  echo "FAIL: payload lost across the migration chain"; cat "$WORK/shell.out"; exit 1; }
grep -q 'swap two' "$WORK/shell.out" || {
  echo "FAIL: cross-shard exchange did not swap contents"; cat "$WORK/shell.out"; exit 1; }
[ "$(grep -c 'resident payload' "$WORK/reader.out")" -eq 8 ] || {
  echo "FAIL: concurrent reader missed the resident payload"; cat "$WORK/reader.out"; exit 1; }
grep -q '\.m' "$WORK/shell.out" && {
  echo "FAIL: migration staging entry leaked into ls /"; cat "$WORK/shell.out"; exit 1; }

kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "FAIL: daemon exited non-zero (CRL-H violation or crash)"
  cat "$WORK/daemon.log"
  exit 1
fi

grep -q '\[4 namespace shard(s)\]' "$WORK/daemon.log" || {
  echo "FAIL: daemon did not serve 4 namespace shards"; cat "$WORK/daemon.log"; exit 1; }
# 4 renames + 1 exchange = 5 committed migrations, 0 aborted.
grep -Eq 'sharded namespace: 5 migration\(s\) committed, 0 aborted' "$WORK/daemon.log" || {
  echo "FAIL: migration counters wrong (want 5 committed, 0 aborted)"
  cat "$WORK/daemon.log"; exit 1; }
grep -q 'VIOLATIONS' "$WORK/daemon.log" && {
  echo "FAIL: CRL-H violations reported"; cat "$WORK/daemon.log"; exit 1; }

echo "PASS: shard smoke (4 shards, 5 cross-shard migrations, monitor clean)"
