// atomfsd: the AtomFS network daemon.
//
//   atomfsd --unix PATH            listen on a Unix-domain socket
//           --tcp PORT             listen on 127.0.0.1:PORT (0 = ephemeral)
//           --backend atomfs|biglock|retryfs|naive   (default atomfs)
//           --workers N            connection worker threads (default 8)
//           --monitor              attach the CRL-H runtime to the served
//                                  instance (atomfs/biglock only); the
//                                  daemon's exit code then reflects the
//                                  verification verdict
//
// At least one of --unix/--tcp is required. SIGINT/SIGTERM trigger a
// graceful shutdown: listeners close, in-flight connections are drained,
// per-op latency stats are printed, and — with --monitor — the refinement /
// invariant verdict decides the exit code.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace atomfs;

  ServerOptions options;
  options.workers = 8;
  std::string backend = "atomfs";
  bool monitor_requested = false;

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg("--unix")) {
      options.unix_path = next();
    } else if (arg("--tcp")) {
      options.tcp_listen = true;
      options.tcp_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg("--backend")) {
      backend = next();
    } else if (arg("--workers")) {
      options.workers = std::atoi(next());
    } else if (arg("--monitor")) {
      monitor_requested = true;
    } else {
      std::fprintf(stderr, "unknown option %s (see header comment for usage)\n", argv[i]);
      return 2;
    }
  }
  if (options.unix_path.empty() && !options.tcp_listen) {
    std::fprintf(stderr, "atomfsd: need --unix PATH and/or --tcp PORT\n");
    return 2;
  }

  std::unique_ptr<CrlhMonitor> monitor;
  if (monitor_requested) {
    if (backend != "atomfs" && backend != "biglock") {
      std::fprintf(stderr, "atomfsd: --monitor requires --backend atomfs or biglock\n");
      return 2;
    }
    monitor = std::make_unique<CrlhMonitor>();
  }

  std::unique_ptr<FileSystem> fs;
  AtomFs* atom_fs = nullptr;  // for the quiescent check at shutdown
  if (backend == "atomfs") {
    AtomFs::Options o;
    o.observer = monitor.get();
    auto owned = std::make_unique<AtomFs>(std::move(o));
    atom_fs = owned.get();
    fs = std::move(owned);
  } else if (backend == "biglock") {
    BigLockFs::Options o;
    o.observer = monitor.get();
    fs = std::make_unique<BigLockFs>(o);
  } else if (backend == "retryfs") {
    fs = std::make_unique<RetryFs>();
  } else if (backend == "naive") {
    fs = std::make_unique<NaiveFs>();
  } else {
    std::fprintf(stderr, "atomfsd: unknown backend %s\n", backend.c_str());
    return 2;
  }

  AtomFsServer server(fs.get(), options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "atomfsd: failed to start: %s\n", ErrcName(st.code()).data());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("atomfsd: serving %s%s on", backend.c_str(), monitor ? " (monitored)" : "");
  if (!options.unix_path.empty()) {
    std::printf(" unix:%s", options.unix_path.c_str());
  }
  if (options.tcp_listen) {
    std::printf(" tcp:%u", server.BoundTcpPort());
  }
  std::printf(" workers=%d\n", options.workers);
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const WireServerStats stats = server.StatsSnapshot();
  std::printf("atomfsd: shut down; %llu connection(s), %llu protocol error(s)\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.protocol_errors));
  for (const WireOpStats& s : stats.ops) {
    std::printf("  %-10s count=%-8llu mean=%lluns p50=%lluns p99=%lluns p99.9=%lluns\n",
                WireOpName(static_cast<WireOp>(s.op)).data(),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.mean_ns),
                static_cast<unsigned long long>(s.p50_ns),
                static_cast<unsigned long long>(s.p99_ns),
                static_cast<unsigned long long>(s.p999_ns));
  }

  if (monitor) {
    if (atom_fs != nullptr) {
      monitor->CheckQuiescent(atom_fs->SnapshotSpec());
    }
    if (!monitor->ok()) {
      std::printf("atomfsd: CRL-H VIOLATIONS:\n");
      for (const auto& v : monitor->violations()) {
        std::printf("  %s\n", v.c_str());
      }
      return 1;
    }
    std::printf("atomfsd: CRL-H monitor: every served operation linearizable (%llu helped)\n",
                static_cast<unsigned long long>(monitor->helped_ops()));
  }
  return 0;
}
