// atomfsd: the AtomFS network daemon.
//
//   atomfsd --unix PATH            listen on a Unix-domain socket
//           --tcp PORT             listen on 127.0.0.1:PORT (0 = ephemeral)
//           --backend atomfs|biglock|retryfs|naive   (default atomfs)
//           --fs-shards N          serve a sharded namespace: N independent
//                                  AtomFs instances behind the first-component
//                                  router (src/shard); cross-shard renames run
//                                  the helped two-shard commit. Requires
//                                  --backend atomfs; with --monitor every
//                                  shard gets its own CRL-H monitor and the
//                                  namespace-level checks gate the exit code
//           --shards N             event-loop shards (default 2)
//           --workers N            request execution threads (default 8)
//           --max-inflight N       largest per-connection pipeline window a
//                                  HELLO may negotiate (default 128)
//           --idle-timeout MS      reap idle/half-open connections after MS
//                                  milliseconds (default 0 = never)
//           --monitor              attach the CRL-H runtime to the served
//                                  instance (atomfs/biglock only); the
//                                  daemon's exit code then reflects the
//                                  verification verdict
//           --metrics-dump        print the atomtrace metrics dump (text
//                                  form of the METRICS op) at shutdown
//           --trace-ring N         trace ring capacity in events (default
//                                  65536; 0 disables the ring)
//           --trace-out FILE       write the flight-recorder ring as Chrome
//                                  trace-event / Perfetto JSON at shutdown
//                                  (and on SIGUSR2)
//           --prom-dump            print the metrics registry in Prometheus
//                                  text format at shutdown
//           --bundle-out FILE      with --monitor: if a violation is found,
//                                  write a post-mortem bundle replayable by
//                                  `atomfs_verify --bundle FILE`
//           --journal FILE         write-ahead journal (atomfs backend only):
//                                  committed history is recovered from FILE
//                                  (newest valid checkpoint + WAL suffix, torn
//                                  tails repaired) before serving, every
//                                  mutation is logged through a TxnManager,
//                                  and the wire ops TXBEGIN/TXCOMMIT/TXABORT/
//                                  CHECKPOINT become available
//           --journal-fsync        fdatasync the journal at every commit
//                                  point: committed history survives power
//                                  loss, not just process death (slower)
//           --checkpoint-bytes N   checkpoint + rotate the journal once the
//                                  live WAL file exceeds N bytes (0 = never)
//           --checkpoint-units N   checkpoint + rotate after N committed
//                                  units (transactions + direct ops; 0 =
//                                  never). SIGHUP forces a checkpoint at any
//                                  time, as does the wire CHECKPOINT op
//
// Observability: the daemon always carries an atomtrace metrics registry —
// the wire METRICS op serves its full snapshot — and, for observer-capable
// backends (atomfs/biglock), a TracingObserver feeding per-op latency,
// lock-coupling hold/step histograms, and (with --monitor) helper/Helplist
// counters into it. SIGUSR1 prints the current dump to stdout at any time;
// SIGUSR2 prints a Prometheus scrape to stdout and refreshes --trace-out;
// --metrics-dump prints the dump once more at shutdown. The flight-recorder
// ring is also served live over the wire (TRACE and PROM admin ops).
//
// At least one of --unix/--tcp is required. SIGINT/SIGTERM trigger a
// graceful shutdown: listeners close, in-flight connections are drained,
// per-op latency stats are printed, and — with --monitor — the refinement /
// invariant verdict decides the exit code.

#include <poll.h>
#include <signal.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/crlh/bundle.h"
#include "src/crlh/monitor.h"
#include "src/obs/export.h"
#include "src/naive/naive_fs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"
#include "src/retryfs/retry_fs.h"
#include "src/server/server.h"
#include "src/shard/sharded_fs.h"
#include "src/txn/txn.h"

namespace {

// Async-signal-safety: the handlers only set a sig_atomic_t flag and poke an
// eventfd (write(2) is on the async-signal-safe list); all formatting and
// I/O — in particular the SIGUSR1 metrics dump, which takes the registry
// mutex and allocates — happens on the main thread's event loop, never in
// signal context.
volatile sig_atomic_t g_stop = 0;
volatile sig_atomic_t g_dump = 0;
volatile sig_atomic_t g_dump2 = 0;  // SIGUSR2: Prometheus + trace refresh
volatile sig_atomic_t g_ckpt = 0;   // SIGHUP: checkpoint + compact the journal
int g_wake_fd = -1;  // eventfd; written by handlers, drained by the loop

void WakeLoop() {
  const uint64_t one = 1;
  // Best-effort: if the eventfd write fails the flags are still seen on the
  // loop's next wakeup.
  [[maybe_unused]] ssize_t n = write(g_wake_fd, &one, sizeof one);
}

void OnSignal(int) { g_stop = 1; WakeLoop(); }
void OnDumpSignal(int) { g_dump = 1; WakeLoop(); }
void OnDump2Signal(int) { g_dump2 = 1; WakeLoop(); }
void OnCkptSignal(int) { g_ckpt = 1; WakeLoop(); }

// Writes the flight-recorder ring to `path` as Chrome trace-event JSON.
// Main-thread only (allocates, takes no locks the ring cares about).
void WriteTraceFile(const atomfs::TraceRing& ring, const std::string& path) {
  const std::string json = atomfs::ExportChromeTrace(ring.Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "atomfsd: cannot open %s: %s\n", path.c_str(), std::strerror(errno));
    return;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("atomfsd: wrote %zu trace byte(s) to %s\n", json.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atomfs;

  ServerOptions options;
  options.workers = 8;
  std::string backend = "atomfs";
  int fs_shards = 0;
  bool monitor_requested = false;
  bool metrics_dump = false;
  size_t trace_ring_events = 1 << 16;
  std::string trace_out;
  bool prom_dump = false;
  std::string bundle_out;
  std::string journal_path;
  bool journal_fsync = false;
  uint64_t checkpoint_bytes = 0;
  uint64_t checkpoint_units = 0;

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg("--unix")) {
      options.unix_path = next();
    } else if (arg("--tcp")) {
      options.tcp_listen = true;
      options.tcp_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg("--backend")) {
      backend = next();
    } else if (arg("--fs-shards")) {
      fs_shards = std::atoi(next());
    } else if (arg("--shards")) {
      options.shards = std::atoi(next());
    } else if (arg("--workers")) {
      options.workers = std::atoi(next());
    } else if (arg("--max-inflight")) {
      options.max_inflight = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg("--idle-timeout")) {
      options.idle_timeout_ms = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg("--monitor")) {
      monitor_requested = true;
    } else if (arg("--metrics-dump")) {
      metrics_dump = true;
    } else if (arg("--trace-ring")) {
      trace_ring_events = static_cast<size_t>(std::atoll(next()));
    } else if (arg("--trace-out")) {
      trace_out = next();
    } else if (arg("--prom-dump")) {
      prom_dump = true;
    } else if (arg("--bundle-out")) {
      bundle_out = next();
    } else if (arg("--journal")) {
      journal_path = next();
    } else if (arg("--journal-fsync")) {
      journal_fsync = true;
    } else if (arg("--checkpoint-bytes")) {
      checkpoint_bytes = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--checkpoint-units")) {
      checkpoint_units = static_cast<uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown option %s (see header comment for usage)\n", argv[i]);
      return 2;
    }
  }
  if (options.unix_path.empty() && !options.tcp_listen) {
    std::fprintf(stderr, "atomfsd: need --unix PATH and/or --tcp PORT\n");
    return 2;
  }
  if (fs_shards < 0) {
    std::fprintf(stderr, "atomfsd: --fs-shards must be >= 1\n");
    return 2;
  }
  if (fs_shards > 0 && backend != "atomfs") {
    std::fprintf(stderr, "atomfsd: --fs-shards requires --backend atomfs\n");
    return 2;
  }
  if (fs_shards > 0 && !journal_path.empty()) {
    // The WAL recovers into one AtomFs inum space; the router splits the
    // namespace across several. Sharded durability is future work.
    std::fprintf(stderr, "atomfsd: --fs-shards and --journal are mutually exclusive\n");
    return 2;
  }

  // The observability spine: one registry serves the METRICS op, the server
  // stats, and (when the backend supports FsObserver) the lock-coupling
  // profiler fed by the TracingObserver.
  MetricsRegistry registry;
  std::unique_ptr<TraceRing> ring;
  if (trace_ring_events > 0) {
    ring = std::make_unique<TraceRing>(trace_ring_events);
  }
  const bool backend_observable = backend == "atomfs" || backend == "biglock";
  std::unique_ptr<TracingObserver> tracer;
  if (backend_observable) {
    tracer = std::make_unique<TracingObserver>(&registry, ring.get());
  }

  std::unique_ptr<CrlhMonitor> monitor;
  if (monitor_requested) {
    if (!backend_observable) {
      std::fprintf(stderr, "atomfsd: --monitor requires --backend atomfs or biglock\n");
      return 2;
    }
    if (fs_shards == 0) {
      // Sharded serving builds one monitor per shard inside ShardedFs instead.
      CrlhMonitor::Options mopts;
      mopts.obs = tracer.get();
      monitor = std::make_unique<CrlhMonitor>(mopts);
    }
  }

  // Observer chain: monitor first (it checks), tracer second (it measures).
  FsObserver* observer = tracer.get();
  std::unique_ptr<TeeObserver> tee;
  if (monitor && tracer) {
    tee = std::make_unique<TeeObserver>(monitor.get(), tracer.get());
    observer = tee.get();
  } else if (monitor) {
    observer = monitor.get();
  }

  std::unique_ptr<FileSystem> fs;
  AtomFs* atom_fs = nullptr;      // for the quiescent check at shutdown
  ShardedFs* sharded = nullptr;   // ditto, namespace-level checks
  if (fs_shards > 0) {
    ShardedFs::Options o;
    o.shards = static_cast<uint32_t>(fs_shards);
    o.monitored = monitor_requested;
    o.monitor.obs = tracer.get();
    o.extra_observer = tracer.get();
    o.obs = tracer.get();
    o.metrics = &registry;
    auto owned = std::make_unique<ShardedFs>(std::move(o));
    sharded = owned.get();
    fs = std::move(owned);
  } else if (backend == "atomfs") {
    AtomFs::Options o;
    o.observer = observer;
    auto owned = std::make_unique<AtomFs>(std::move(o));
    atom_fs = owned.get();
    fs = std::move(owned);
  } else if (backend == "biglock") {
    BigLockFs::Options o;
    o.observer = observer;
    fs = std::make_unique<BigLockFs>(o);
  } else if (backend == "retryfs") {
    fs = std::make_unique<RetryFs>();
  } else if (backend == "naive") {
    fs = std::make_unique<NaiveFs>();
  } else {
    std::fprintf(stderr, "atomfsd: unknown backend %s\n", backend.c_str());
    return 2;
  }

  // Transactions + durability: recover committed history from the journal
  // into the backend, then serve through a TxnManager so every mutation —
  // direct or transactional — is write-ahead logged and conflict-tracked.
  std::unique_ptr<TxnManager> txn;
  if (!journal_path.empty()) {
    if (atom_fs == nullptr) {
      std::fprintf(stderr, "atomfsd: --journal requires --backend atomfs\n");
      return 2;
    }
    // Repair mode: interrupted checkpoint rotations are completed and torn
    // WAL tails truncated, so the reopened journal appends after a clean
    // prefix instead of burying new records behind unreadable bytes.
    auto recovered = RecoverJournal(journal_path, *atom_fs, /*repair=*/true);
    if (!recovered.ok() && recovered.status().code() != Errc::kNoEnt) {
      std::fprintf(stderr, "atomfsd: journal recovery from %s failed: %s\n",
                   journal_path.c_str(), ErrcName(recovered.status().code()).data());
      return 1;
    }
    if (recovered.ok()) {
      std::printf(
          "atomfsd: recovered %llu op(s) in %llu committed unit(s) from %s%s%s%s\n",
          static_cast<unsigned long long>(recovered->wal.applied_ops + recovered->checkpoint_ops),
          static_cast<unsigned long long>(recovered->committed_units), journal_path.c_str(),
          recovered->used_checkpoint
              ? (recovered->fell_back_to_prev ? " (checkpoint base, fell back to .ckpt.prev)"
                                              : " (checkpoint base)")
              : "",
          recovered->wal.torn_tail ? " (torn tail discarded)" : "",
          recovered->wal.discarded > 0 ? " (open txns at the tail dropped)" : "");
    }
    TxnManager::Options topt;
    topt.inner = fs.get();
    topt.wal_path = journal_path;
    topt.metrics = &registry;
    topt.trace_ring = ring.get();
    topt.initial = atom_fs->SnapshotSpec();
    topt.fsync_commits = journal_fsync;
    topt.checkpoint_bytes = checkpoint_bytes;
    topt.checkpoint_units = checkpoint_units;
    if (recovered.ok()) {
      topt.first_txid = recovered->max_txid + 1;
      topt.first_ckpt_id = recovered->generation + 1;
      topt.recovered_units = recovered->committed_units;
    }
    txn = std::make_unique<TxnManager>(std::move(topt));
  }

  options.metrics = &registry;
  options.trace_ring = ring.get();
  options.txn = txn.get();
  AtomFsServer server(txn != nullptr ? static_cast<FileSystem*>(txn.get()) : fs.get(), options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "atomfsd: failed to start: %s\n", ErrcName(st.code()).data());
    return 1;
  }

  // The wake eventfd must exist before any handler can run.
  g_wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (g_wake_fd < 0) {
    std::fprintf(stderr, "atomfsd: eventfd: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = OnDumpSignal;
  sigaction(SIGUSR1, &sa, nullptr);
  sa.sa_handler = OnDump2Signal;
  sigaction(SIGUSR2, &sa, nullptr);
  sa.sa_handler = OnCkptSignal;
  sigaction(SIGHUP, &sa, nullptr);

  if (!trace_out.empty() && ring == nullptr) {
    std::fprintf(stderr, "atomfsd: --trace-out needs a trace ring (--trace-ring > 0)\n");
  }
  if (!bundle_out.empty() && monitor == nullptr && !(sharded != nullptr && monitor_requested)) {
    std::fprintf(stderr, "atomfsd: --bundle-out has no effect without --monitor\n");
  }

  std::printf("atomfsd: serving %s%s%s%s on", backend.c_str(),
              monitor != nullptr || (sharded != nullptr && monitor_requested) ? " (monitored)"
                                                                              : "",
              tracer ? " (traced)" : "", txn ? " (journaled)" : "");
  if (sharded != nullptr) {
    std::printf(" [%u namespace shard(s)]", sharded->shard_count());
  }
  if (!options.unix_path.empty()) {
    std::printf(" unix:%s", options.unix_path.c_str());
  }
  if (options.tcp_listen) {
    std::printf(" tcp:%u", server.BoundTcpPort());
  }
  std::printf(" shards=%d workers=%d max_inflight=%u\n", options.shards, options.workers,
              options.max_inflight);
  std::fflush(stdout);

  // Event loop: block on the wake eventfd (no sleep-polling), consume the
  // flags the handlers set. Dumps run here, on the main thread, with a live
  // registry — signal context never touches it.
  while (!g_stop) {
    pollfd pfd{g_wake_fd, POLLIN, 0};
    const int pn = poll(&pfd, 1, -1);
    if (pn < 0 && errno != EINTR) {
      break;
    }
    uint64_t junk = 0;
    while (read(g_wake_fd, &junk, sizeof junk) > 0) {
    }
    if (g_dump) {
      g_dump = 0;
      std::fputs(registry.Snapshot().ToText().c_str(), stdout);
      std::fflush(stdout);
    }
    if (g_ckpt) {
      g_ckpt = 0;
      if (txn != nullptr) {
        const Status st = txn->TakeCheckpoint();
        if (st.ok()) {
          std::printf("atomfsd: journal checkpointed + compacted (%llu total)\n",
                      static_cast<unsigned long long>(txn->checkpoints_taken()));
        } else {
          std::fprintf(stderr, "atomfsd: checkpoint failed: %s\n", ErrcName(st.code()).data());
        }
        std::fflush(stdout);
      } else {
        std::fprintf(stderr, "atomfsd: SIGHUP checkpoint ignored (no --journal)\n");
      }
    }
    if (g_dump2) {
      g_dump2 = 0;
      std::fputs(PrometheusText(registry.Snapshot()).c_str(), stdout);
      std::fflush(stdout);
      if (!trace_out.empty() && ring != nullptr) {
        WriteTraceFile(*ring, trace_out);
      }
    }
  }
  server.Stop();
  close(g_wake_fd);

  const WireServerStats stats = server.StatsSnapshot();
  std::printf("atomfsd: shut down; %llu connection(s), %llu protocol error(s)\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.protocol_errors));
  for (const WireOpStats& s : stats.ops) {
    std::printf("  %-10s count=%-8llu mean=%lluns p50=%lluns p99=%lluns p99.9=%lluns\n",
                WireOpName(static_cast<WireOp>(s.op)).data(),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.mean_ns),
                static_cast<unsigned long long>(s.p50_ns),
                static_cast<unsigned long long>(s.p99_ns),
                static_cast<unsigned long long>(s.p999_ns));
  }
  if (metrics_dump) {
    std::fputs(registry.Snapshot().ToText().c_str(), stdout);
  }
  if (prom_dump) {
    std::fputs(PrometheusText(registry.Snapshot()).c_str(), stdout);
  }
  if (ring != nullptr) {
    std::printf("atomfsd: trace ring retained %zu of %llu event(s)\n", ring->Snapshot().size(),
                static_cast<unsigned long long>(ring->total_appended()));
    if (!trace_out.empty()) {
      WriteTraceFile(*ring, trace_out);
    }
  }

  if (sharded != nullptr) {
    // Namespace-level verdict: leftover staging entries, each shard monitor's
    // quiescent check, then the cross-shard migration counters for the log.
    sharded->CheckQuiescent();
    std::printf(
        "atomfsd: sharded namespace: %llu migration(s) committed, %llu aborted, "
        "%llu cross-shard help edge(s), %llu stale-route retrie(s)\n",
        static_cast<unsigned long long>(sharded->migrations_completed()),
        static_cast<unsigned long long>(sharded->migrations_aborted()),
        static_cast<unsigned long long>(sharded->cross_shard_help_edges()),
        static_cast<unsigned long long>(sharded->stale_route_retries()));
    if (!sharded->ok()) {
      std::printf("atomfsd: CRL-H VIOLATIONS:\n");
      for (const auto& v : sharded->violations()) {
        std::printf("  %s\n", v.c_str());
      }
      if (!bundle_out.empty()) {
        if (auto pm = sharded->PostMortemState(); pm.has_value()) {
          const PostMortemBundle bundle = BuildPostMortemBundle(
              *pm, ring != nullptr ? ring->Snapshot() : std::vector<TraceEvent>{});
          const std::string text = FormatBundle(bundle);
          if (std::FILE* f = std::fopen(bundle_out.c_str(), "w"); f != nullptr) {
            std::fputs(text.c_str(), f);
            std::fclose(f);
            std::printf("atomfsd: wrote post-mortem bundle to %s "
                        "(replay: atomfs_verify --bundle %s)\n",
                        bundle_out.c_str(), bundle_out.c_str());
          } else {
            std::fprintf(stderr, "atomfsd: cannot open %s: %s\n", bundle_out.c_str(),
                         std::strerror(errno));
          }
        }
      }
      return 1;
    }
    if (monitor_requested) {
      std::printf("atomfsd: CRL-H monitors: every served operation linearizable on its shard\n");
    }
  }

  if (monitor) {
    if (atom_fs != nullptr) {
      monitor->CheckQuiescent(atom_fs->SnapshotSpec());
    }
    if (!monitor->ok()) {
      std::printf("atomfsd: CRL-H VIOLATIONS:\n");
      for (const auto& v : monitor->violations()) {
        std::printf("  %s\n", v.c_str());
      }
      if (!bundle_out.empty()) {
        if (auto pm = monitor->PostMortemState(); pm.has_value()) {
          const PostMortemBundle bundle = BuildPostMortemBundle(
              *pm, ring != nullptr ? ring->Snapshot() : std::vector<TraceEvent>{});
          const std::string text = FormatBundle(bundle);
          if (std::FILE* f = std::fopen(bundle_out.c_str(), "w"); f != nullptr) {
            std::fputs(text.c_str(), f);
            std::fclose(f);
            std::printf("atomfsd: wrote post-mortem bundle to %s "
                        "(replay: atomfs_verify --bundle %s)\n",
                        bundle_out.c_str(), bundle_out.c_str());
          } else {
            std::fprintf(stderr, "atomfsd: cannot open %s: %s\n", bundle_out.c_str(),
                         std::strerror(errno));
          }
        }
      }
      return 1;
    }
    std::printf("atomfsd: CRL-H monitor: every served operation linearizable (%llu helped)\n",
                static_cast<unsigned long long>(monitor->helped_ops()));
  }
  return 0;
}
