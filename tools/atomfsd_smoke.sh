#!/usr/bin/env bash
# End-to-end atomfsd smoke test (wired into ctest; see tools/CMakeLists.txt):
# start the daemon on a Unix socket with the CRL-H monitor attached and
# --metrics-dump, drive a handful of operations through a remote fsshell
# (including a METRICS fetch), then shut down gracefully and require a clean
# (verified) exit plus a parseable metrics dump with nonzero op counters.
#
# Usage: atomfsd_smoke.sh /path/to/atomfsd /path/to/fsshell
set -euo pipefail

ATOMFSD=${1:?usage: atomfsd_smoke.sh ATOMFSD FSSHELL}
FSSHELL=${2:?usage: atomfsd_smoke.sh ATOMFSD FSSHELL}

WORK=$(mktemp -d)
SOCK="$WORK/atomfsd.sock"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$ATOMFSD" --unix "$SOCK" --monitor --metrics-dump --workers 4 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never created $SOCK"; cat "$WORK/daemon.log"; exit 1; }

printf 'mkdir /a\nwrite /a/f hello from the wire\ncat /a/f\nmv /a/f /a/g\nls /a\nstat /a/g\nmetrics\n' \
  | "$FSSHELL" --connect "unix:$SOCK" > "$WORK/shell.out"

grep -q 'hello from the wire' "$WORK/shell.out" || {
  echo "FAIL: remote cat did not round-trip"; cat "$WORK/shell.out"; exit 1; }
grep -q '^g$' "$WORK/shell.out" || {
  echo "FAIL: remote rename not visible in ls"; cat "$WORK/shell.out"; exit 1; }

# The fsshell `metrics` command fetched the METRICS op: the dump must carry
# nonzero backend op/lock counters and a server-side per-op histogram.
grep -q '# atomtrace metrics' "$WORK/shell.out" || {
  echo "FAIL: METRICS fetch missing from shell output"; cat "$WORK/shell.out"; exit 1; }
grep -Eq '^counter fs\.ops [1-9][0-9]*$' "$WORK/shell.out" || {
  echo "FAIL: fs.ops counter missing or zero"; cat "$WORK/shell.out"; exit 1; }
grep -Eq '^counter lock\.acquires [1-9][0-9]*$' "$WORK/shell.out" || {
  echo "FAIL: lock.acquires counter missing or zero"; cat "$WORK/shell.out"; exit 1; }
grep -Eq '^hist server\.op\.mkdir\.latency_ns count=[1-9]' "$WORK/shell.out" || {
  echo "FAIL: server per-op histogram missing"; cat "$WORK/shell.out"; exit 1; }

kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "FAIL: daemon exited non-zero (monitor violation or crash)"
  cat "$WORK/daemon.log"
  exit 1
fi
grep -q 'shut down' "$WORK/daemon.log" || {
  echo "FAIL: no graceful shutdown message"; cat "$WORK/daemon.log"; exit 1; }
grep -q 'every served operation linearizable' "$WORK/daemon.log" || {
  echo "FAIL: monitor verdict missing"; cat "$WORK/daemon.log"; exit 1; }

# --metrics-dump printed the registry again at shutdown, in the daemon log.
grep -q '# atomtrace metrics' "$WORK/daemon.log" || {
  echo "FAIL: --metrics-dump produced no dump at shutdown"; cat "$WORK/daemon.log"; exit 1; }
grep -Eq '^counter fs\.ops [1-9][0-9]*$' "$WORK/daemon.log" || {
  echo "FAIL: shutdown dump has no nonzero fs.ops"; cat "$WORK/daemon.log"; exit 1; }

echo "PASS: atomfsd smoke ($(grep -c . "$WORK/shell.out") shell lines, monitor clean, metrics dumped)"
