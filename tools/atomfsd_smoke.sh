#!/usr/bin/env bash
# End-to-end atomfsd smoke test (wired into ctest; see tools/CMakeLists.txt):
# start the daemon on a Unix socket with the CRL-H monitor attached, drive a
# handful of operations through a remote fsshell, then shut down gracefully
# and require a clean (verified) exit.
#
# Usage: atomfsd_smoke.sh /path/to/atomfsd /path/to/fsshell
set -euo pipefail

ATOMFSD=${1:?usage: atomfsd_smoke.sh ATOMFSD FSSHELL}
FSSHELL=${2:?usage: atomfsd_smoke.sh ATOMFSD FSSHELL}

WORK=$(mktemp -d)
SOCK="$WORK/atomfsd.sock"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$ATOMFSD" --unix "$SOCK" --monitor --workers 4 > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never created $SOCK"; cat "$WORK/daemon.log"; exit 1; }

printf 'mkdir /a\nwrite /a/f hello from the wire\ncat /a/f\nmv /a/f /a/g\nls /a\nstat /a/g\n' \
  | "$FSSHELL" --connect "unix:$SOCK" > "$WORK/shell.out"

grep -q 'hello from the wire' "$WORK/shell.out" || {
  echo "FAIL: remote cat did not round-trip"; cat "$WORK/shell.out"; exit 1; }
grep -q '^g$' "$WORK/shell.out" || {
  echo "FAIL: remote rename not visible in ls"; cat "$WORK/shell.out"; exit 1; }

kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "FAIL: daemon exited non-zero (monitor violation or crash)"
  cat "$WORK/daemon.log"
  exit 1
fi
grep -q 'shut down' "$WORK/daemon.log" || {
  echo "FAIL: no graceful shutdown message"; cat "$WORK/daemon.log"; exit 1; }
grep -q 'every served operation linearizable' "$WORK/daemon.log" || {
  echo "FAIL: monitor verdict missing"; cat "$WORK/daemon.log"; exit 1; }

echo "PASS: atomfsd smoke ($(grep -c . "$WORK/shell.out") shell lines, monitor clean)"
