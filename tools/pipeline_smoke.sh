#!/usr/bin/env bash
# Pipelined serving-layer smoke (wired into ctest; see tools/CMakeLists.txt):
# start atomfsd with the CRL-H monitor attached, drive it with the load
# generator's pipeline mode — 64 connections, 8 requests in flight each, over
# a Unix socket — under --check, which fails on any non-OK reply or a
# per-connection fairness ratio above 10x. Then shut the daemon down and
# require a clean exit plus the monitor's linearizability verdict: the event
# loop must stay verified under high-connection-count pipelined load.
#
# Usage: pipeline_smoke.sh /path/to/atomfsd /path/to/bench_server_throughput
set -euo pipefail

ATOMFSD=${1:?usage: pipeline_smoke.sh ATOMFSD BENCH}
BENCH=${2:?usage: pipeline_smoke.sh ATOMFSD BENCH}

WORK=$(mktemp -d)
SOCK="$WORK/atomfsd.sock"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$ATOMFSD" --unix "$SOCK" --monitor --workers 4 --idle-timeout 10000 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never created $SOCK"; cat "$WORK/daemon.log"; exit 1; }

# Under sanitizer instrumentation (5-20x slowdown, one shadow thread pool)
# per-connection scheduling skew says nothing about the server's fairness,
# and 64 connections on an instrumented single core cannot all complete an
# op per pass. The sanitizer runner (tools/run_sanitizers.sh) therefore
# raises the ratio bound and shrinks the connection count; the correctness
# checks — non-OK replies, starved connections at the reduced count, the
# monitor verdict — stay at full strength.
FAIRNESS_LIMIT=${ATOMFS_FAIRNESS_LIMIT:-10}
CONNECTIONS=${ATOMFS_SMOKE_CONNECTIONS:-64}

if ! "$BENCH" --connect "unix:$SOCK" --connections "$CONNECTIONS" --pipeline 8 --seconds 1 \
    --check --fairness-limit "$FAIRNESS_LIMIT" \
    --json "$WORK/BENCH_server.json" > "$WORK/bench.out" 2>&1; then
  echo "FAIL: pipelined load check failed"
  cat "$WORK/bench.out"
  cat "$WORK/daemon.log"
  exit 1
fi
cat "$WORK/bench.out"

grep -q '"benchmark":"server_pipeline"' "$WORK/BENCH_server.json" || {
  echo "FAIL: pipeline report missing from JSON"; cat "$WORK/BENCH_server.json"; exit 1; }

kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "FAIL: daemon exited non-zero (monitor violation or crash)"
  cat "$WORK/daemon.log"
  exit 1
fi
grep -q 'every served operation linearizable' "$WORK/daemon.log" || {
  echo "FAIL: monitor verdict missing after pipelined load"; cat "$WORK/daemon.log"; exit 1; }

echo "PASS: ${CONNECTIONS}x8 pipelined load served, all replies OK, monitor verdict clean"
