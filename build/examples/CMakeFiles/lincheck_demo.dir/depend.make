# Empty dependencies file for lincheck_demo.
# This may be replaced when dependencies are built.
