file(REMOVE_RECURSE
  "CMakeFiles/lincheck_demo.dir/lincheck_demo.cpp.o"
  "CMakeFiles/lincheck_demo.dir/lincheck_demo.cpp.o.d"
  "lincheck_demo"
  "lincheck_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lincheck_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
