file(REMOVE_RECURSE
  "CMakeFiles/fsshell.dir/fsshell.cpp.o"
  "CMakeFiles/fsshell.dir/fsshell.cpp.o.d"
  "fsshell"
  "fsshell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsshell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
