# Empty compiler generated dependencies file for concurrent_workload.
# This may be replaced when dependencies are built.
