file(REMOVE_RECURSE
  "CMakeFiles/concurrent_workload.dir/concurrent_workload.cpp.o"
  "CMakeFiles/concurrent_workload.dir/concurrent_workload.cpp.o.d"
  "concurrent_workload"
  "concurrent_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
