file(REMOVE_RECURSE
  "CMakeFiles/spec_fs_test.dir/spec_fs_test.cc.o"
  "CMakeFiles/spec_fs_test.dir/spec_fs_test.cc.o.d"
  "spec_fs_test"
  "spec_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
