file(REMOVE_RECURSE
  "CMakeFiles/dir_table_test.dir/dir_table_test.cc.o"
  "CMakeFiles/dir_table_test.dir/dir_table_test.cc.o.d"
  "dir_table_test"
  "dir_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
