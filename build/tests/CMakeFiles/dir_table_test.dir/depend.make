# Empty dependencies file for dir_table_test.
# This may be replaced when dependencies are built.
