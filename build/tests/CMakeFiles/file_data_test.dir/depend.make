# Empty dependencies file for file_data_test.
# This may be replaced when dependencies are built.
