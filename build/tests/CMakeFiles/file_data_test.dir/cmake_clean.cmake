file(REMOVE_RECURSE
  "CMakeFiles/file_data_test.dir/file_data_test.cc.o"
  "CMakeFiles/file_data_test.dir/file_data_test.cc.o.d"
  "file_data_test"
  "file_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
