# Empty compiler generated dependencies file for lin_check_test.
# This may be replaced when dependencies are built.
