file(REMOVE_RECURSE
  "CMakeFiles/lin_check_test.dir/lin_check_test.cc.o"
  "CMakeFiles/lin_check_test.dir/lin_check_test.cc.o.d"
  "lin_check_test"
  "lin_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
