file(REMOVE_RECURSE
  "CMakeFiles/rg_check_test.dir/rg_check_test.cc.o"
  "CMakeFiles/rg_check_test.dir/rg_check_test.cc.o.d"
  "rg_check_test"
  "rg_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
