# Empty dependencies file for rg_check_test.
# This may be replaced when dependencies are built.
