
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/path_test.cc" "tests/CMakeFiles/path_test.dir/path_test.cc.o" "gcc" "tests/CMakeFiles/path_test.dir/path_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atomfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_variants.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_crlh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_afs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
