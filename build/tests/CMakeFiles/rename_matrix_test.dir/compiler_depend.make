# Empty compiler generated dependencies file for rename_matrix_test.
# This may be replaced when dependencies are built.
