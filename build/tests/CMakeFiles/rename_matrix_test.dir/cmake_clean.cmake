file(REMOVE_RECURSE
  "CMakeFiles/rename_matrix_test.dir/rename_matrix_test.cc.o"
  "CMakeFiles/rename_matrix_test.dir/rename_matrix_test.cc.o.d"
  "rename_matrix_test"
  "rename_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
