# Empty compiler generated dependencies file for handle_vfs_test.
# This may be replaced when dependencies are built.
