file(REMOVE_RECURSE
  "CMakeFiles/handle_vfs_test.dir/handle_vfs_test.cc.o"
  "CMakeFiles/handle_vfs_test.dir/handle_vfs_test.cc.o.d"
  "handle_vfs_test"
  "handle_vfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handle_vfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
