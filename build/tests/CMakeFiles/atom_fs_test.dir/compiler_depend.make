# Empty compiler generated dependencies file for atom_fs_test.
# This may be replaced when dependencies are built.
