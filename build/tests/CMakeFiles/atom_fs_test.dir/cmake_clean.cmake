file(REMOVE_RECURSE
  "CMakeFiles/atom_fs_test.dir/atom_fs_test.cc.o"
  "CMakeFiles/atom_fs_test.dir/atom_fs_test.cc.o.d"
  "atom_fs_test"
  "atom_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
