# Empty dependencies file for atom_fs_test.
# This may be replaced when dependencies are built.
