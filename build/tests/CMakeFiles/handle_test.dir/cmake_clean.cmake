file(REMOVE_RECURSE
  "CMakeFiles/handle_test.dir/handle_test.cc.o"
  "CMakeFiles/handle_test.dir/handle_test.cc.o.d"
  "handle_test"
  "handle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
