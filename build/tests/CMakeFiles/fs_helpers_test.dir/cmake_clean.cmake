file(REMOVE_RECURSE
  "CMakeFiles/fs_helpers_test.dir/fs_helpers_test.cc.o"
  "CMakeFiles/fs_helpers_test.dir/fs_helpers_test.cc.o.d"
  "fs_helpers_test"
  "fs_helpers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_helpers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
