# Empty compiler generated dependencies file for fs_helpers_test.
# This may be replaced when dependencies are built.
