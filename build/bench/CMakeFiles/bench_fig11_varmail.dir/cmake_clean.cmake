file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_varmail.dir/bench_fig11_varmail.cc.o"
  "CMakeFiles/bench_fig11_varmail.dir/bench_fig11_varmail.cc.o.d"
  "bench_fig11_varmail"
  "bench_fig11_varmail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_varmail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
