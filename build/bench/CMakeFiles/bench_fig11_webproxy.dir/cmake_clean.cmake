file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_webproxy.dir/bench_fig11_webproxy.cc.o"
  "CMakeFiles/bench_fig11_webproxy.dir/bench_fig11_webproxy.cc.o.d"
  "bench_fig11_webproxy"
  "bench_fig11_webproxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_webproxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
