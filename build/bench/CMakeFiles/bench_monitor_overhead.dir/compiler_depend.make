# Empty compiler generated dependencies file for bench_monitor_overhead.
# This may be replaced when dependencies are built.
