file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_overhead.dir/bench_monitor_overhead.cc.o"
  "CMakeFiles/bench_monitor_overhead.dir/bench_monitor_overhead.cc.o.d"
  "bench_monitor_overhead"
  "bench_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
