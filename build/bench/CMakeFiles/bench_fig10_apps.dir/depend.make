# Empty dependencies file for bench_fig10_apps.
# This may be replaced when dependencies are built.
