file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fileserver.dir/bench_fig11_fileserver.cc.o"
  "CMakeFiles/bench_fig11_fileserver.dir/bench_fig11_fileserver.cc.o.d"
  "bench_fig11_fileserver"
  "bench_fig11_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
