file(REMOVE_RECURSE
  "CMakeFiles/bench_helper_stats.dir/bench_helper_stats.cc.o"
  "CMakeFiles/bench_helper_stats.dir/bench_helper_stats.cc.o.d"
  "bench_helper_stats"
  "bench_helper_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_helper_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
