# Empty compiler generated dependencies file for bench_helper_stats.
# This may be replaced when dependencies are built.
