# Empty compiler generated dependencies file for bench_tab2_loc.
# This may be replaced when dependencies are built.
