file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_loc.dir/bench_tab2_loc.cc.o"
  "CMakeFiles/bench_tab2_loc.dir/bench_tab2_loc.cc.o.d"
  "bench_tab2_loc"
  "bench_tab2_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
