file(REMOVE_RECURSE
  "CMakeFiles/bench_interdep.dir/bench_interdep.cc.o"
  "CMakeFiles/bench_interdep.dir/bench_interdep.cc.o.d"
  "bench_interdep"
  "bench_interdep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
