# Empty dependencies file for bench_interdep.
# This may be replaced when dependencies are built.
