file(REMOVE_RECURSE
  "libatomfs_workload.a"
)
