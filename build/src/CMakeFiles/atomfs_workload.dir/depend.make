# Empty dependencies file for atomfs_workload.
# This may be replaced when dependencies are built.
