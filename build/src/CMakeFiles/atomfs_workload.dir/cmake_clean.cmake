file(REMOVE_RECURSE
  "CMakeFiles/atomfs_workload.dir/workload/apps.cc.o"
  "CMakeFiles/atomfs_workload.dir/workload/apps.cc.o.d"
  "CMakeFiles/atomfs_workload.dir/workload/filebench.cc.o"
  "CMakeFiles/atomfs_workload.dir/workload/filebench.cc.o.d"
  "CMakeFiles/atomfs_workload.dir/workload/lfs.cc.o"
  "CMakeFiles/atomfs_workload.dir/workload/lfs.cc.o.d"
  "CMakeFiles/atomfs_workload.dir/workload/trace.cc.o"
  "CMakeFiles/atomfs_workload.dir/workload/trace.cc.o.d"
  "libatomfs_workload.a"
  "libatomfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
