file(REMOVE_RECURSE
  "libatomfs_afs.a"
)
