file(REMOVE_RECURSE
  "CMakeFiles/atomfs_afs.dir/afs/op.cc.o"
  "CMakeFiles/atomfs_afs.dir/afs/op.cc.o.d"
  "CMakeFiles/atomfs_afs.dir/afs/spec_fs.cc.o"
  "CMakeFiles/atomfs_afs.dir/afs/spec_fs.cc.o.d"
  "libatomfs_afs.a"
  "libatomfs_afs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_afs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
