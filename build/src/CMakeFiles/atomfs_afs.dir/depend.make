# Empty dependencies file for atomfs_afs.
# This may be replaced when dependencies are built.
