file(REMOVE_RECURSE
  "CMakeFiles/atomfs_journal.dir/journal/journal_fs.cc.o"
  "CMakeFiles/atomfs_journal.dir/journal/journal_fs.cc.o.d"
  "libatomfs_journal.a"
  "libatomfs_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
