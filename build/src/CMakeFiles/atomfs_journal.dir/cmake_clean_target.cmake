file(REMOVE_RECURSE
  "libatomfs_journal.a"
)
