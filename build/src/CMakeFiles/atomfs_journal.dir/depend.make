# Empty dependencies file for atomfs_journal.
# This may be replaced when dependencies are built.
