# Empty dependencies file for atomfs_variants.
# This may be replaced when dependencies are built.
