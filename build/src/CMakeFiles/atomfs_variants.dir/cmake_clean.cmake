file(REMOVE_RECURSE
  "CMakeFiles/atomfs_variants.dir/biglock/big_lock_fs.cc.o"
  "CMakeFiles/atomfs_variants.dir/biglock/big_lock_fs.cc.o.d"
  "CMakeFiles/atomfs_variants.dir/naive/naive_fs.cc.o"
  "CMakeFiles/atomfs_variants.dir/naive/naive_fs.cc.o.d"
  "CMakeFiles/atomfs_variants.dir/retryfs/handle_vfs.cc.o"
  "CMakeFiles/atomfs_variants.dir/retryfs/handle_vfs.cc.o.d"
  "CMakeFiles/atomfs_variants.dir/retryfs/retry_fs.cc.o"
  "CMakeFiles/atomfs_variants.dir/retryfs/retry_fs.cc.o.d"
  "libatomfs_variants.a"
  "libatomfs_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
