file(REMOVE_RECURSE
  "libatomfs_variants.a"
)
