file(REMOVE_RECURSE
  "CMakeFiles/atomfs_vfs.dir/vfs/filesystem.cc.o"
  "CMakeFiles/atomfs_vfs.dir/vfs/filesystem.cc.o.d"
  "CMakeFiles/atomfs_vfs.dir/vfs/path.cc.o"
  "CMakeFiles/atomfs_vfs.dir/vfs/path.cc.o.d"
  "CMakeFiles/atomfs_vfs.dir/vfs/vfs.cc.o"
  "CMakeFiles/atomfs_vfs.dir/vfs/vfs.cc.o.d"
  "libatomfs_vfs.a"
  "libatomfs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
