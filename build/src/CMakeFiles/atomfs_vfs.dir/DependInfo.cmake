
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/filesystem.cc" "src/CMakeFiles/atomfs_vfs.dir/vfs/filesystem.cc.o" "gcc" "src/CMakeFiles/atomfs_vfs.dir/vfs/filesystem.cc.o.d"
  "/root/repo/src/vfs/path.cc" "src/CMakeFiles/atomfs_vfs.dir/vfs/path.cc.o" "gcc" "src/CMakeFiles/atomfs_vfs.dir/vfs/path.cc.o.d"
  "/root/repo/src/vfs/vfs.cc" "src/CMakeFiles/atomfs_vfs.dir/vfs/vfs.cc.o" "gcc" "src/CMakeFiles/atomfs_vfs.dir/vfs/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atomfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
