file(REMOVE_RECURSE
  "libatomfs_vfs.a"
)
