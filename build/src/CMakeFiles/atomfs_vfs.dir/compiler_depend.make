# Empty compiler generated dependencies file for atomfs_vfs.
# This may be replaced when dependencies are built.
