file(REMOVE_RECURSE
  "CMakeFiles/atomfs_crlh.dir/crlh/effects.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/effects.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/explore.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/explore.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/gate.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/gate.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/ghost.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/ghost.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/lin_check.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/lin_check.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/monitor.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/monitor.cc.o.d"
  "CMakeFiles/atomfs_crlh.dir/crlh/rg_check.cc.o"
  "CMakeFiles/atomfs_crlh.dir/crlh/rg_check.cc.o.d"
  "libatomfs_crlh.a"
  "libatomfs_crlh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_crlh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
