# Empty dependencies file for atomfs_crlh.
# This may be replaced when dependencies are built.
