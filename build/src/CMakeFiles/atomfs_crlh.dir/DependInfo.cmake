
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crlh/effects.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/effects.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/effects.cc.o.d"
  "/root/repo/src/crlh/explore.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/explore.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/explore.cc.o.d"
  "/root/repo/src/crlh/gate.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/gate.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/gate.cc.o.d"
  "/root/repo/src/crlh/ghost.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/ghost.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/ghost.cc.o.d"
  "/root/repo/src/crlh/lin_check.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/lin_check.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/lin_check.cc.o.d"
  "/root/repo/src/crlh/monitor.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/monitor.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/monitor.cc.o.d"
  "/root/repo/src/crlh/rg_check.cc" "src/CMakeFiles/atomfs_crlh.dir/crlh/rg_check.cc.o" "gcc" "src/CMakeFiles/atomfs_crlh.dir/crlh/rg_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atomfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_afs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atomfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
