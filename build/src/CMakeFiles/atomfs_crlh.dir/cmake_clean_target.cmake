file(REMOVE_RECURSE
  "libatomfs_crlh.a"
)
