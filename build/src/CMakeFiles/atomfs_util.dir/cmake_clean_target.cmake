file(REMOVE_RECURSE
  "libatomfs_util.a"
)
