# Empty dependencies file for atomfs_util.
# This may be replaced when dependencies are built.
