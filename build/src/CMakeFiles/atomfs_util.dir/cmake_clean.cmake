file(REMOVE_RECURSE
  "CMakeFiles/atomfs_util.dir/util/stats.cc.o"
  "CMakeFiles/atomfs_util.dir/util/stats.cc.o.d"
  "CMakeFiles/atomfs_util.dir/util/status.cc.o"
  "CMakeFiles/atomfs_util.dir/util/status.cc.o.d"
  "libatomfs_util.a"
  "libatomfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
