file(REMOVE_RECURSE
  "libatomfs_sim.a"
)
