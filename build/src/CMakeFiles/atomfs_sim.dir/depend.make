# Empty dependencies file for atomfs_sim.
# This may be replaced when dependencies are built.
