file(REMOVE_RECURSE
  "CMakeFiles/atomfs_sim.dir/sim/executor.cc.o"
  "CMakeFiles/atomfs_sim.dir/sim/executor.cc.o.d"
  "libatomfs_sim.a"
  "libatomfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
