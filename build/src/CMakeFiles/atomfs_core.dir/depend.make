# Empty dependencies file for atomfs_core.
# This may be replaced when dependencies are built.
