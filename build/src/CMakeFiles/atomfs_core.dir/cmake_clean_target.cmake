file(REMOVE_RECURSE
  "libatomfs_core.a"
)
