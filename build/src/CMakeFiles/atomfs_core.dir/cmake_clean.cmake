file(REMOVE_RECURSE
  "CMakeFiles/atomfs_core.dir/core/atom_fs.cc.o"
  "CMakeFiles/atomfs_core.dir/core/atom_fs.cc.o.d"
  "CMakeFiles/atomfs_core.dir/core/dir_table.cc.o"
  "CMakeFiles/atomfs_core.dir/core/dir_table.cc.o.d"
  "CMakeFiles/atomfs_core.dir/core/file_data.cc.o"
  "CMakeFiles/atomfs_core.dir/core/file_data.cc.o.d"
  "libatomfs_core.a"
  "libatomfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
