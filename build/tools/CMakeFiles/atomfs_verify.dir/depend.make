# Empty dependencies file for atomfs_verify.
# This may be replaced when dependencies are built.
