file(REMOVE_RECURSE
  "CMakeFiles/atomfs_verify.dir/atomfs_verify.cpp.o"
  "CMakeFiles/atomfs_verify.dir/atomfs_verify.cpp.o.d"
  "atomfs_verify"
  "atomfs_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomfs_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
